// RTree correctness under dynamic insert/remove — the exact workload the
// locality-optimized Interchange generates. Randomized operation
// sequences are cross-checked against a brute-force shadow structure and
// the tree's own invariant checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "index/rtree.h"
#include "util/random.h"

namespace vas {
namespace {

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.RadiusQueryIds({0, 0}, 10).empty());
  EXPECT_TRUE(tree.RangeQuery(Rect::Of(-1, -1, 1, 1)).empty());
  EXPECT_FALSE(tree.Remove({0, 0}, 0));
  tree.CheckInvariants();
}

TEST(RTreeTest, InsertThenQuery) {
  RTree tree;
  tree.Insert({1, 1}, 10);
  tree.Insert({2, 2}, 20);
  tree.Insert({9, 9}, 30);
  EXPECT_EQ(tree.size(), 3u);
  auto near = tree.RadiusQueryIds({1.5, 1.5}, 1.0);
  std::sort(near.begin(), near.end());
  EXPECT_EQ(near, (std::vector<size_t>{10, 20}));
  auto in_rect = tree.RangeQuery(Rect::Of(0, 0, 3, 3));
  EXPECT_EQ(in_rect.size(), 2u);
  tree.CheckInvariants();
}

TEST(RTreeTest, RemoveExistingAndMissing) {
  RTree tree;
  tree.Insert({1, 1}, 1);
  tree.Insert({2, 2}, 2);
  EXPECT_TRUE(tree.Remove({1, 1}, 1));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_FALSE(tree.Remove({1, 1}, 1));      // already gone
  EXPECT_FALSE(tree.Remove({2, 2}, 999));    // wrong payload
  EXPECT_FALSE(tree.Remove({5, 5}, 2));      // wrong point
  EXPECT_TRUE(tree.Remove({2, 2}, 2));
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
}

TEST(RTreeTest, ManyInsertsForceDeepSplits) {
  RTree tree;
  Rng rng(5);
  std::vector<std::pair<Point, size_t>> all;
  for (size_t i = 0; i < 2000; ++i) {
    Point p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    tree.Insert(p, i);
    all.emplace_back(p, i);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 2000u);

  // Spot-check several radius queries against brute force.
  for (int t = 0; t < 20; ++t) {
    Point q{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    double r = rng.Uniform(1, 20);
    auto got = tree.RadiusQueryIds(q, r);
    std::sort(got.begin(), got.end());
    std::vector<size_t> want;
    for (const auto& [p, id] : all) {
      if (SquaredDistance(p, q) <= r * r) want.push_back(id);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(RTreeTest, BoundsTracksContents) {
  RTree tree;
  tree.Insert({1, 2}, 0);
  tree.Insert({5, -3}, 1);
  Rect b = tree.bounds();
  EXPECT_EQ(b, Rect::Of(1, -3, 5, 2));
  tree.Remove({5, -3}, 1);
  EXPECT_EQ(tree.bounds(), Rect::Of(1, 2, 1, 2));
}

TEST(RTreeTest, DuplicatePointsDistinctPayloads) {
  RTree tree;
  for (size_t i = 0; i < 50; ++i) tree.Insert({3.0, 3.0}, i);
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_EQ(tree.RadiusQueryIds({3, 3}, 0.0).size(), 50u);
  // Remove a specific payload among identical points.
  EXPECT_TRUE(tree.Remove({3, 3}, 25));
  auto left = tree.RadiusQueryIds({3, 3}, 0.0);
  EXPECT_EQ(left.size(), 49u);
  EXPECT_EQ(std::count(left.begin(), left.end(), 25), 0);
  tree.CheckInvariants();
}

class RTreeChurnTest : public ::testing::TestWithParam<int> {};

// Interleaved insert/remove churn mirroring Interchange's swap pattern:
// the tree always holds exactly K live entries while entries rotate.
TEST_P(RTreeChurnTest, SwapChurnKeepsTreeConsistent) {
  const size_t kSlots = 64;
  Rng rng(GetParam());
  RTree tree;
  std::map<size_t, Point> shadow;  // slot -> current point
  for (size_t i = 0; i < kSlots; ++i) {
    Point p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    tree.Insert(p, i);
    shadow[i] = p;
  }
  for (int step = 0; step < 3000; ++step) {
    size_t slot = rng.Below(kSlots);
    Point next{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    ASSERT_TRUE(tree.Remove(shadow[slot], slot));
    tree.Insert(next, slot);
    shadow[slot] = next;
    if (step % 500 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), kSlots);
  // Final cross-check of every entry via tiny radius queries.
  for (const auto& [slot, p] : shadow) {
    auto ids = tree.RadiusQueryIds(p, 1e-12);
    EXPECT_NE(std::find(ids.begin(), ids.end(), slot), ids.end());
  }
}

TEST_P(RTreeChurnTest, RandomInsertRemoveMatchesBruteForce) {
  Rng rng(GetParam() + 77);
  RTree tree;
  std::vector<std::pair<Point, size_t>> live;
  size_t next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    bool insert = live.empty() || rng.Bernoulli(0.55);
    if (insert) {
      Point p{rng.Uniform(0, 50), rng.Uniform(0, 50)};
      tree.Insert(p, next_id);
      live.emplace_back(p, next_id);
      ++next_id;
    } else {
      size_t pick = rng.Below(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(tree.Remove(live[pick].first, live[pick].second));
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), live.size());
  for (int t = 0; t < 10; ++t) {
    Point q{rng.Uniform(0, 50), rng.Uniform(0, 50)};
    double r = rng.Uniform(1, 15);
    auto got = tree.RadiusQueryIds(q, r);
    std::sort(got.begin(), got.end());
    std::vector<size_t> want;
    for (const auto& [p, id] : live) {
      if (SquaredDistance(p, q) <= r * r) want.push_back(id);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeChurnTest,
                         ::testing::Values(11, 22, 33));

TEST(RTreeTest, LargerNodeCapacity) {
  RTree tree(16);
  Rng rng(9);
  for (size_t i = 0; i < 500; ++i) {
    tree.Insert({rng.Uniform(0, 10), rng.Uniform(0, 10)}, i);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 500u);
}

}  // namespace
}  // namespace vas
