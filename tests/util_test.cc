// Unit tests for the util substrate: Status/StatusOr, strings, flags,
// and the PCG random generator's statistical behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace vas {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::string> v = std::string("hello");
  std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "hello");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ','), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ';'), ';'), parts);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringsTest, ParseDoubleAcceptsValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e-3 "), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("3.25x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseInt64("1000000000000"), 1000000000000LL);
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-flag", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d/%s", 3, "x"), "3/x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  FlagSet flags;
  flags.Define("n", "10", "count");
  flags.Define("name", "", "a name");
  const char* argv[] = {"prog", "--n=25", "--name", "geo"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("n"), 25);
  EXPECT_EQ(flags.GetString("name"), "geo");
}

TEST(FlagsTest, DefaultsApplyWhenUnset) {
  FlagSet flags;
  flags.Define("scale", "1.5", "scale");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 1.5);
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagSet flags;
  flags.Define("n", "10", "count");
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, PositionalAndHelp) {
  FlagSet flags;
  flags.Define("b", "false", "a bool");
  const char* argv[] = {"prog", "input.csv", "--help", "--b=true"};
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_TRUE(flags.GetBool("b"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BelowIsInRangeAndCoversAll) {
  Rng rng(7);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = rng.Below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.015);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(double(i));
  double first = w.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(w.ElapsedSeconds(), first);  // monotone
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace vas
