// String helpers: edge cases beyond util_test.cc's smoke coverage —
// empty inputs, separator-only strings, whitespace handling in the
// numeric parsers, and formatting boundaries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/strings.h"

namespace vas {
namespace {

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, SeparatorOnlyYieldsEmptyFields) {
  EXPECT_EQ(Split(",,", ','), (std::vector<std::string>{"", "", ""}));
}

TEST(SplitTest, TrailingSeparatorKeepsEmptyTail) {
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(JoinTest, EmptyAndSingleton) {
  EXPECT_EQ(Join({}, ','), "");
  EXPECT_EQ(Join({"solo"}, ','), "solo");
}

TEST(JoinSplitTest, RoundTripsArbitraryFields) {
  std::vector<std::string> fields = {"", "a", "", "bc", ""};
  EXPECT_EQ(Split(Join(fields, '|'), '|'), fields);
}

TEST(StripWhitespaceTest, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(StripWhitespace(" \t\r\n "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StripWhitespaceTest, InteriorWhitespaceSurvives) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
}

TEST(ParseDoubleTest, AcceptsSurroundingWhitespaceAndForms) {
  EXPECT_DOUBLE_EQ(*ParseDouble("  3.5 "), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e-3"), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsTrailingGarbageAndEmpty) {
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
  EXPECT_FALSE(ParseDouble("1.2 3.4").ok());
}

TEST(ParseInt64Test, AcceptsNegativeAndWhitespace) {
  EXPECT_EQ(*ParseInt64(" -42 "), -42);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsFloatsAndGarbage) {
  EXPECT_FALSE(ParseInt64("3.5").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StartsWithTest, EdgeCases) {
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(StartsWith("abc", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(StrFormatTest, HandlesLongOutput) {
  // Output longer than any plausible stack buffer must not truncate.
  std::string big(5000, 'x');
  std::string out = StrFormat("[%s]", big.c_str());
  EXPECT_EQ(out.size(), big.size() + 2);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrFormatTest, MixedArguments) {
  EXPECT_EQ(StrFormat("%d/%s/%.2f", 7, "id", 1.5), "7/id/1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(FormatWithCommasTest, Boundaries) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
  EXPECT_EQ(FormatWithCommas(-999), "-999");
}

}  // namespace
}  // namespace vas
