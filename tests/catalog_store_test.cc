// CatalogStore (the paged CAT2 format): format sniffing, exact
// round-trips through the cell-partitioned writer, cell-range partial
// loads (coverage and density fidelity vs the resident rung), the
// touched-page accounting that proves one viewport reads fewer bytes
// than full materialization, CatalogView parity with SampleCatalog,
// and corruption hardening — truncation, bit flips, out-of-range page
// directories, and oversized cell counts must all come back as clean
// Status errors, never crashes or silent bad data.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "engine/catalog_io.h"
#include "engine/catalog_store.h"
#include "sampling/uniform_sampler.h"
#include "test_util.h"
#include "util/crc32.h"

namespace vas {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t LoadU64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

void StoreU64(std::string* bytes, size_t offset, uint64_t v) {
  std::memcpy(bytes->data() + offset, &v, sizeof(v));
}

void StoreU32(std::string* bytes, size_t offset, uint32_t v) {
  std::memcpy(bytes->data() + offset, &v, sizeof(v));
}

constexpr size_t kFooterBytes = 48;

/// Rewrites the footer checksum after a test mutates footer fields, so
/// the mutation reaches the structural checks behind it.
void FixFooterCrc(std::string* bytes) {
  const size_t footer = bytes->size() - kFooterBytes;
  StoreU64(bytes, footer + 40, Crc32(bytes->data() + footer, 40));
}

/// Rewrites page `page`'s CRC header to match its (mutated) payload.
void FixPageCrc(std::string* bytes, size_t page_size, size_t page) {
  const size_t offset = page * page_size;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, bytes->data() + offset + 4, sizeof(payload_len));
  StoreU32(bytes, offset, Crc32(bytes->data() + offset + 8, payload_len));
}

class CatalogStoreTest : public test::TempFileTest {
 protected:
  CatalogStoreTest() : TempFileTest("vas_catalog_store_test.vascat") {}

  SampleCatalog Build(const Dataset& d, std::vector<size_t> ladder,
                      bool density) {
    UniformReservoirSampler sampler(5);
    SampleCatalog::Options opt;
    opt.ladder = std::move(ladder);
    opt.embed_density = density;
    return SampleCatalog(d, sampler, opt);
  }
};

TEST_F(CatalogStoreTest, SniffDistinguishesTheFormats) {
  Dataset d = test::Skewed(500);
  SampleCatalog catalog = Build(d, {100}, /*density=*/false);

  ASSERT_TRUE(WriteCatalogV1(catalog, path()).ok());
  auto v1 = SniffCatalogFormat(path());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, CatalogFormat::kV1);

  ASSERT_TRUE(WriteCatalogPaged(catalog, path()).ok());
  auto v2 = SniffCatalogFormat(path());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, CatalogFormat::kV2);

  EXPECT_EQ(SniffCatalogFormat("/nonexistent/nope.vascat").status().code(),
            StatusCode::kIoError);
  WriteFileBytes(path(), "definitely not a catalog of any format");
  EXPECT_EQ(SniffCatalogFormat(path()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogStoreTest, PagedRoundTripPreservesEveryRungExactly) {
  Dataset d = test::Skewed(3000);
  SampleCatalog catalog = Build(d, {50, 400, 2000}, /*density=*/true);
  CatalogWriteOptions wopt;
  wopt.dataset = &d;  // cell-partitioned, the layout spills use
  wopt.target_entries_per_cell = 128;
  ASSERT_TRUE(WriteCatalogPaged(catalog, path(), wopt).ok());

  auto store = CatalogStore::Open(path());
  ASSERT_TRUE(store.ok());
  ASSERT_EQ((*store)->rung_count(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    const SampleSet& orig = catalog.samples()[k];
    auto got = (*store)->MaterializeRung(k, d.size());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->method, orig.method);
    EXPECT_EQ(got->ids, orig.ids);  // original order via the permutation
    EXPECT_EQ(got->density, orig.density);
  }

  auto all = (*store)->ReadAll(d.size());
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->samples().size(), 3u);
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(all->samples()[k].ids, catalog.samples()[k].ids);
  }
}

TEST_F(CatalogStoreTest, WriterRejectsBadOptions) {
  Dataset d = test::Skewed(200);
  SampleCatalog catalog = Build(d, {50}, /*density=*/false);
  CatalogWriteOptions wopt;
  wopt.page_size = 100;  // not a multiple of 8, below the minimum
  EXPECT_EQ(WriteCatalogPaged(catalog, path(), wopt).code(),
            StatusCode::kInvalidArgument);
  wopt.page_size = 4100;  // not a multiple of 8
  EXPECT_EQ(WriteCatalogPaged(catalog, path(), wopt).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteCatalogPaged(SampleCatalog({}), path()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogStoreTest, CellRangeLoadCoversEveryPointInTheRect) {
  Dataset d = test::Skewed(20000);
  SampleCatalog catalog = Build(d, {5000}, /*density=*/true);
  CatalogWriteOptions wopt;
  wopt.dataset = &d;
  wopt.target_entries_per_cell = 128;
  ASSERT_TRUE(WriteCatalogPaged(catalog, path(), wopt).ok());
  auto store = CatalogStore::Open(path());
  ASSERT_TRUE(store.ok());

  const SampleSet& rung = catalog.samples()[0];
  std::map<uint64_t, double> density_of;
  for (size_t i = 0; i < rung.ids.size(); ++i) {
    density_of[rung.ids[i]] = rung.density[i];
  }

  Rect bounds = d.Bounds();
  Rect query = Rect::Of(bounds.min_x + bounds.width() * 0.40,
                        bounds.min_y + bounds.height() * 0.40,
                        bounds.min_x + bounds.width() * 0.55,
                        bounds.min_y + bounds.height() * 0.55);
  auto partial = (*store)->MaterializeCells(0, query, d.size());
  ASSERT_TRUE(partial.ok());
  ASSERT_EQ(partial->density.size(), partial->ids.size());

  // Every loaded entry is a genuine rung entry carrying its own
  // density, and every rung point inside the rect was loaded (the
  // result is a cell-aligned superset of the rect's contents).
  for (size_t i = 0; i < partial->ids.size(); ++i) {
    auto it = density_of.find(partial->ids[i]);
    ASSERT_NE(it, density_of.end()) << "id not in the rung";
    EXPECT_EQ(partial->density[i], it->second);
  }
  std::set<uint64_t> loaded(partial->ids.begin(), partial->ids.end());
  size_t in_rect = 0;
  for (uint64_t id : rung.ids) {
    if (!query.Contains(d.points[id])) continue;
    ++in_rect;
    EXPECT_TRUE(loaded.count(id) > 0)
        << "rung point inside the query rect was not loaded";
  }
  ASSERT_GT(in_rect, 0u) << "degenerate query: rect missed every point";
  EXPECT_LT(partial->ids.size(), rung.ids.size())
      << "partial load degenerated to the whole rung";
}

TEST_F(CatalogStoreTest, EmptyAndDisjointQueriesLoadNothing) {
  Dataset d = test::Skewed(5000);
  SampleCatalog catalog = Build(d, {1000}, /*density=*/false);
  CatalogWriteOptions wopt;
  wopt.dataset = &d;
  ASSERT_TRUE(WriteCatalogPaged(catalog, path(), wopt).ok());
  auto store = CatalogStore::Open(path());
  ASSERT_TRUE(store.ok());

  auto empty = (*store)->MaterializeCells(0, Rect(), d.size());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);

  Rect bounds = d.Bounds();
  Rect outside =
      Rect::Of(bounds.max_x + 1.0, bounds.max_y + 1.0, bounds.max_x + 2.0,
               bounds.max_y + 2.0);
  auto disjoint = (*store)->MaterializeCells(0, outside, d.size());
  ASSERT_TRUE(disjoint.ok());
  EXPECT_EQ(disjoint->size(), 0u);
}

TEST_F(CatalogStoreTest, OneViewportTouchesFewerBytesThanFullLoad) {
  // The partial-load payoff, measured by the store's own accounting:
  // materializing one small viewport faults in strictly fewer pages
  // than materializing the rung, which itself is the cost a full
  // reload would pay.
  Dataset d = test::Skewed(50000);
  SampleCatalog catalog = Build(d, {20000}, /*density=*/false);
  CatalogWriteOptions wopt;
  wopt.dataset = &d;
  wopt.page_size = 512;  // many pages, so the gap is sharp
  wopt.target_entries_per_cell = 256;
  ASSERT_TRUE(WriteCatalogPaged(catalog, path(), wopt).ok());

  auto full = CatalogStore::Open(path());
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE((*full)->MaterializeRung(0, d.size()).ok());
  const size_t full_touched = (*full)->touched_bytes();

  auto partial = CatalogStore::Open(path());  // fresh accounting
  ASSERT_TRUE(partial.ok());
  Rect bounds = d.Bounds();
  Rect viewport = Rect::Of(bounds.min_x + bounds.width() * 0.45,
                           bounds.min_y + bounds.height() * 0.45,
                           bounds.min_x + bounds.width() * 0.55,
                           bounds.min_y + bounds.height() * 0.55);
  auto loaded = (*partial)->MaterializeCells(0, viewport, d.size());
  ASSERT_TRUE(loaded.ok());
  ASSERT_GT(loaded->size(), 0u);

  EXPECT_GT((*partial)->touched_bytes(), 0u);
  EXPECT_LT((*partial)->touched_bytes(), full_touched)
      << "one viewport should fault in fewer pages than the whole rung";
  EXPECT_LT((*partial)->touched_bytes(), (*partial)->file_bytes());
}

TEST_F(CatalogStoreTest, ViewMatchesResidentCatalogSemantics) {
  Dataset d = test::Skewed(4000);
  SampleCatalog catalog = Build(d, {100, 900}, /*density=*/false);
  CatalogWriteOptions wopt;
  wopt.dataset = &d;
  ASSERT_TRUE(WriteCatalogPaged(catalog, path(), wopt).ok());
  auto store = CatalogStore::Open(path());
  ASSERT_TRUE(store.ok());

  CatalogView mapped(*store, d.size());
  CatalogView resident(
      std::make_shared<const SampleCatalog>(catalog));
  ASSERT_TRUE(mapped.valid());
  ASSERT_TRUE(resident.valid());
  EXPECT_TRUE(mapped.partial());
  EXPECT_FALSE(resident.partial());
  ASSERT_EQ(mapped.rung_count(), resident.rung_count());
  for (size_t k = 0; k < mapped.rung_count(); ++k) {
    EXPECT_EQ(mapped.rung_size(k), resident.rung_size(k));
    EXPECT_EQ(resident.ResidentRung(k)->ids, catalog.samples()[k].ids);
    EXPECT_EQ(mapped.ResidentRung(k), nullptr);
    auto whole = mapped.MaterializeRung(k);
    ASSERT_TRUE(whole.ok());
    EXPECT_EQ(whole->ids, catalog.samples()[k].ids);
  }

  // Both views pick the same rung SampleCatalog would.
  VizTimeModel model{1e-4, 0.0};
  for (double budget : {1e-6, 0.02, 1.0}) {
    size_t from_mapped = mapped.ChooseForTimeBudget(budget, model);
    EXPECT_EQ(mapped.rung_size(from_mapped),
              catalog.ChooseForTimeBudget(budget, model).size());
    EXPECT_EQ(from_mapped, resident.ChooseForTimeBudget(budget, model));
  }
}

TEST_F(CatalogStoreTest, MaterializeChecksIdsAgainstTheDataset) {
  Dataset d = test::Skewed(1000);
  SampleCatalog catalog = Build(d, {200}, /*density=*/false);
  ASSERT_TRUE(WriteCatalogPaged(catalog, path()).ok());
  auto store = CatalogStore::Open(path());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->MaterializeRung(0, d.size()).ok());
  // Against a smaller dataset the stored ids run out of range.
  EXPECT_EQ((*store)->MaterializeRung(0, 10).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*store)->MaterializeCells(0, d.Bounds(), 10).status().code(),
            StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Corruption hardening: every mutation must surface as a Status.

class CatalogStoreCorruptionTest : public CatalogStoreTest {
 protected:
  /// Writes a healthy one-rung paged catalog and returns its bytes.
  std::string WriteHealthy() {
    Dataset d = test::Skewed(2000);
    SampleCatalog catalog = Build(d, {600}, /*density=*/false);
    CatalogWriteOptions wopt;
    wopt.dataset = &d;
    EXPECT_TRUE(WriteCatalogPaged(catalog, path(), wopt).ok());
    return ReadFileBytes(path());
  }
};

TEST_F(CatalogStoreCorruptionTest, TruncatedFilesAreRejected) {
  std::string bytes = WriteHealthy();
  WriteFileBytes(path(), bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(CatalogStore::Open(path()).ok());
  WriteFileBytes(path(), bytes.substr(0, 100));
  EXPECT_EQ(CatalogStore::Open(path()).status().code(),
            StatusCode::kInvalidArgument);
  // Dropping the last byte desynchronizes the footer-implied geometry.
  WriteFileBytes(path(), bytes.substr(0, bytes.size() - 1));
  EXPECT_FALSE(CatalogStore::Open(path()).ok());
}

TEST_F(CatalogStoreCorruptionTest, BitFlippedPayloadFailsChecksumOnTouch) {
  std::string bytes = WriteHealthy();
  // Flip one bit of page 1's payload (the first data page). Open still
  // succeeds — CRCs are lazy — but the first materialization that
  // touches the page must fail, not return wrong ids.
  const size_t page_size = LoadU64(bytes, bytes.size() - kFooterBytes + 8);
  bytes[page_size + 16] = static_cast<char>(bytes[page_size + 16] ^ 0x40);
  WriteFileBytes(path(), bytes);
  auto store = CatalogStore::Open(path());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->MaterializeRung(0, 0).status().code(),
            StatusCode::kIoError);
}

TEST_F(CatalogStoreCorruptionTest, BitFlippedFooterIsRejected) {
  std::string bytes = WriteHealthy();
  const size_t crc_at = bytes.size() - 8;
  bytes[crc_at] = static_cast<char>(bytes[crc_at] ^ 0x01);
  WriteFileBytes(path(), bytes);
  EXPECT_EQ(CatalogStore::Open(path()).status().code(),
            StatusCode::kIoError);
}

TEST_F(CatalogStoreCorruptionTest, OutOfRangePageDirectoryIsRejected) {
  std::string bytes = WriteHealthy();
  const size_t footer = bytes.size() - kFooterBytes;
  const uint64_t page_count = LoadU64(bytes, footer + 16);
  // Point the metadata region past the end of the file, with a valid
  // footer CRC so the mutation reaches the range check itself.
  StoreU64(&bytes, footer + 24, page_count + 5);
  FixFooterCrc(&bytes);
  WriteFileBytes(path(), bytes);
  EXPECT_EQ(CatalogStore::Open(path()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogStoreCorruptionTest, OversizedCellCountsAreRejected) {
  std::string bytes = WriteHealthy();
  const size_t footer = bytes.size() - kFooterBytes;
  const size_t page_size = LoadU64(bytes, footer + 8);
  const size_t meta_first = LoadU64(bytes, footer + 24);
  const size_t meta_offset = meta_first * page_size;
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + meta_offset + 4,
              sizeof(payload_len));
  ASSERT_GE(payload_len, 8u);
  // The rung's cell counts are the tail of the metadata stream; blow
  // the last one up and re-seal the page so only the semantic check
  // can catch it.
  StoreU64(&bytes, meta_offset + 8 + payload_len - 8, uint64_t{1} << 40);
  FixPageCrc(&bytes, page_size, meta_first);
  WriteFileBytes(path(), bytes);
  EXPECT_EQ(CatalogStore::Open(path()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vas
