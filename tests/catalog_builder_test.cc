// SampleCatalog::Builder: asynchronous ladder construction — rungs
// published as they finish, immutable snapshots, blocking-equivalence
// with the synchronous constructor.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>

#include "engine/sample_catalog.h"
#include "sampling/uniform_sampler.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace vas {
namespace {

SamplerFactory UniformFactory(uint64_t seed) {
  return [seed]() { return std::make_unique<UniformReservoirSampler>(seed); };
}

SampleCatalog::Options SmallLadder() {
  SampleCatalog::Options opt;
  opt.ladder = {50, 200, 1000};
  opt.embed_density = false;
  return opt;
}

TEST(CatalogBuilderTest, BuildsFullLadderOnPool) {
  auto d = std::make_shared<Dataset>(test::Skewed(5000));
  ThreadPool pool(4);
  SampleCatalog::Builder builder(d, UniformFactory(1), SmallLadder(), &pool);
  EXPECT_EQ(builder.rungs_total(), 3u);
  builder.Start();
  auto catalog = builder.Wait();
  ASSERT_NE(catalog, nullptr);
  ASSERT_EQ(catalog->samples().size(), 3u);
  EXPECT_EQ(catalog->samples()[0].size(), 50u);
  EXPECT_EQ(catalog->samples()[1].size(), 200u);
  EXPECT_EQ(catalog->samples()[2].size(), 1000u);
  EXPECT_TRUE(builder.done());
  EXPECT_EQ(builder.rungs_ready(), 3u);
}

TEST(CatalogBuilderTest, InlineBuildWithoutPool) {
  auto d = std::make_shared<Dataset>(test::Skewed(2000));
  SampleCatalog::Builder builder(d, UniformFactory(2), SmallLadder(),
                                 nullptr);
  EXPECT_EQ(builder.Snapshot(), nullptr);  // nothing before Start
  builder.Start();
  EXPECT_TRUE(builder.done());  // inline build is synchronous
  auto catalog = builder.Snapshot();
  ASSERT_NE(catalog, nullptr);
  EXPECT_EQ(catalog->samples().size(), 3u);
}

TEST(CatalogBuilderTest, LadderClampsAndDeduplicatesLikeBlockingBuild) {
  auto d = std::make_shared<Dataset>(test::Skewed(500));
  SampleCatalog::Options opt;
  opt.ladder = {1000, 100, 100, 5000};  // unsorted, duplicated, oversized
  opt.embed_density = false;
  SampleCatalog::Builder builder(d, UniformFactory(3), opt, nullptr);
  EXPECT_EQ(builder.rungs_total(), 2u);  // {100, 500}
  builder.Start();
  auto catalog = builder.Wait();
  ASSERT_EQ(catalog->samples().size(), 2u);
  EXPECT_EQ(catalog->samples()[0].size(), 100u);
  EXPECT_EQ(catalog->samples()[1].size(), 500u);
}

TEST(CatalogBuilderTest, SnapshotsArePublishedProgressively) {
  auto d = std::make_shared<Dataset>(test::Skewed(3000));
  ThreadPool pool(1);  // serialize rungs so progression is observable
  SampleCatalog::Builder builder(d, UniformFactory(4), SmallLadder(), &pool);
  builder.Start();
  auto first = builder.WaitForRung(1);
  ASSERT_NE(first, nullptr);
  ASSERT_GE(first->samples().size(), 1u);
  // Rungs are submitted smallest-first, so the first published ladder
  // starts with the smallest rung.
  EXPECT_EQ(first->samples()[0].size(), 50u);
  auto all = builder.Wait();
  EXPECT_EQ(all->samples().size(), 3u);
  // The first snapshot is immutable: publishing later rungs must not
  // have grown the catalog already handed out.
  EXPECT_GE(first->samples().size(), 1u);
  EXPECT_LE(first->samples().size(), 3u);
}

TEST(CatalogBuilderTest, SnapshotsStaySortedAscending) {
  auto d = std::make_shared<Dataset>(test::Skewed(4000));
  ThreadPool pool(3);  // rungs land in racy order
  SampleCatalog::Options opt;
  opt.ladder = {100, 400, 1600, 3200};
  opt.embed_density = false;
  SampleCatalog::Builder builder(d, UniformFactory(5), opt, &pool);
  builder.Start();
  for (size_t want = 1; want <= 4; ++want) {
    auto snapshot = builder.WaitForRung(want);
    ASSERT_NE(snapshot, nullptr);
    const auto& rungs = snapshot->samples();
    ASSERT_GE(rungs.size(), 1u);
    for (size_t i = 1; i < rungs.size(); ++i) {
      EXPECT_LT(rungs[i - 1].size(), rungs[i].size());
    }
  }
}

TEST(CatalogBuilderTest, DensityEmbeddingRunsPerRung) {
  auto d = std::make_shared<Dataset>(test::Skewed(2000));
  ThreadPool pool(2);
  SampleCatalog::Options opt;
  opt.ladder = {50, 300};
  opt.embed_density = true;
  SampleCatalog::Builder builder(d, UniformFactory(6), opt, &pool);
  builder.Start();
  auto catalog = builder.Wait();
  for (const SampleSet& s : catalog->samples()) {
    ASSERT_TRUE(s.has_density());
    uint64_t total = 0;
    for (uint64_t c : s.density) total += c;
    EXPECT_EQ(total, d->size());
  }
}

TEST(CatalogBuilderTest, MatchesBlockingConstructorResult) {
  Dataset d = test::Skewed(3000);
  UniformReservoirSampler sampler(7);
  SampleCatalog blocking(d, sampler, SmallLadder());

  auto shared = std::make_shared<Dataset>(d);
  ThreadPool pool(2);
  SampleCatalog::Builder builder(shared, UniformFactory(7), SmallLadder(),
                                 &pool);
  builder.Start();
  auto async_catalog = builder.Wait();
  ASSERT_EQ(async_catalog->samples().size(), blocking.samples().size());
  for (size_t i = 0; i < blocking.samples().size(); ++i) {
    EXPECT_EQ(async_catalog->samples()[i].ids, blocking.samples()[i].ids);
  }
}

TEST(CatalogBuilderTest, DestructorWaitsForOutstandingRungs) {
  auto d = std::make_shared<Dataset>(test::Skewed(20000));
  ThreadPool pool(2);
  {
    SampleCatalog::Builder builder(d, UniformFactory(8), SmallLadder(),
                                   &pool);
    builder.Start();
    // Leaving scope immediately: the destructor must block until the
    // in-flight rungs finish rather than letting tasks touch a dead
    // builder. Nothing to assert — TSan/ASan would flag the bug.
  }
  SUCCEED();
}

}  // namespace
}  // namespace vas
