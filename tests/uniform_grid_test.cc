// UniformGrid: cell mapping, assignment, and census queries.
#include <gtest/gtest.h>

#include "index/uniform_grid.h"
#include "util/random.h"

namespace vas {
namespace {

TEST(UniformGridTest, CellOfCorners) {
  UniformGrid grid(Rect::Of(0, 0, 10, 10), 5, 5);
  EXPECT_EQ(grid.num_cells(), 25u);
  EXPECT_EQ(grid.CellOf({0.0, 0.0}), 0u);
  EXPECT_EQ(grid.CellOf({9.99, 0.0}), 4u);
  EXPECT_EQ(grid.CellOf({0.0, 9.99}), 20u);
  EXPECT_EQ(grid.CellOf({9.99, 9.99}), 24u);
  // The max corner clamps into the last cell rather than overflowing.
  EXPECT_EQ(grid.CellOf({10.0, 10.0}), 24u);
}

TEST(UniformGridTest, OutOfDomainPointsClamp) {
  UniformGrid grid(Rect::Of(0, 0, 10, 10), 2, 2);
  EXPECT_EQ(grid.CellOf({-5.0, -5.0}), 0u);
  EXPECT_EQ(grid.CellOf({15.0, 15.0}), 3u);
}

TEST(UniformGridTest, CellBoundsTileTheDomain) {
  UniformGrid grid(Rect::Of(-1, -1, 1, 1), 4, 2);
  double area = 0.0;
  for (size_t c = 0; c < grid.num_cells(); ++c) {
    Rect b = grid.CellBounds(c);
    area += b.Area();
    EXPECT_GE(b.min_x, -1.0);
    EXPECT_LE(b.max_x, 1.0);
  }
  EXPECT_NEAR(area, 4.0, 1e-12);
}

TEST(UniformGridTest, CellOfConsistentWithCellBounds) {
  UniformGrid grid(Rect::Of(0, 0, 7, 3), 7, 3);
  Rng rng(3);
  for (int t = 0; t < 500; ++t) {
    Point p{rng.Uniform(0, 7), rng.Uniform(0, 3)};
    size_t cell = grid.CellOf(p);
    EXPECT_TRUE(grid.CellBounds(cell).Contains(p));
  }
}

TEST(UniformGridTest, AssignPartitionsAllPoints) {
  Rng rng(4);
  std::vector<Point> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  UniformGrid grid(Rect::Of(0, 0, 10, 10), 8, 8);
  grid.Assign(pts);
  size_t total = 0;
  for (size_t c = 0; c < grid.num_cells(); ++c) {
    for (size_t id : grid.PointsInCell(c)) {
      EXPECT_EQ(grid.CellOf(pts[id]), c);
    }
    total += grid.CountInCell(c);
  }
  EXPECT_EQ(total, pts.size());
  EXPECT_GT(grid.NumOccupiedCells(), 0u);
  EXPECT_LE(grid.NumOccupiedCells(), grid.num_cells());
}

TEST(UniformGridTest, SingleCellGridTakesEverything) {
  UniformGrid grid(Rect::Of(0, 0, 1, 1), 1, 1);
  EXPECT_EQ(grid.num_cells(), 1u);
  EXPECT_EQ(grid.CellOf({0.5, 0.5}), 0u);
  EXPECT_EQ(grid.CellOf({-100, 100}), 0u);
  grid.Assign({{0.1, 0.1}, {0.9, 0.9}});
  EXPECT_EQ(grid.CountInCell(0), 2u);
}

TEST(UniformGridTest, AssignEmptyPointSet) {
  UniformGrid grid(Rect::Of(0, 0, 1, 1), 3, 3);
  grid.Assign({});
  EXPECT_EQ(grid.NumOccupiedCells(), 0u);
  for (size_t c = 0; c < grid.num_cells(); ++c) {
    EXPECT_EQ(grid.CountInCell(c), 0u);
  }
}

TEST(UniformGridTest, AsymmetricGridShape) {
  UniformGrid grid(Rect::Of(0, 0, 10, 2), 10, 2);
  EXPECT_EQ(grid.nx(), 10u);
  EXPECT_EQ(grid.ny(), 2u);
  // Cell ids are row-major: (x=3, y=1) -> 1*10 + 3.
  EXPECT_EQ(grid.CellOf({3.5, 1.5}), 13u);
}

TEST(UniformGridTest, CountInRectMatchesBruteForce) {
  // The cell-aggregate count must be exactly the brute-force count for
  // arbitrary query rectangles — including ones poking past the domain
  // and ones smaller than a single cell.
  Rng rng(99);
  std::vector<Point> points;
  points.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    points.push_back({rng.Uniform(-3, 7), rng.Uniform(0, 10)});
  }
  UniformGrid grid(Rect::Of(-3, 0, 7, 10), 16, 16);
  grid.Assign(points);

  for (int q = 0; q < 200; ++q) {
    double x0 = rng.Uniform(-5, 9), x1 = rng.Uniform(-5, 9);
    double y0 = rng.Uniform(-2, 12), y1 = rng.Uniform(-2, 12);
    Rect rect = Rect::Of(std::min(x0, x1), std::min(y0, y1),
                         std::max(x0, x1), std::max(y0, y1));
    size_t brute = 0;
    for (const Point& p : points) {
      if (rect.Contains(p)) ++brute;
    }
    EXPECT_EQ(grid.CountInRect(rect, points), brute);
  }
}

TEST(UniformGridTest, CountInRectEdgeCases) {
  std::vector<Point> points = {{0, 0}, {5, 5}, {10, 10}, {20, 20}};
  UniformGrid grid(Rect::Of(0, 0, 10, 10), 4, 4);
  grid.Assign(points);  // (20,20) clamps into the far corner cell
  // Empty rect matches nothing.
  EXPECT_EQ(grid.CountInRect(Rect{}, points), 0u);
  // The whole domain still excludes the clamped outside point.
  EXPECT_EQ(grid.CountInRect(Rect::Of(0, 0, 10, 10), points), 3u);
  // A rect past the domain picks the outside point up.
  EXPECT_EQ(grid.CountInRect(Rect::Of(0, 0, 30, 30), points), 4u);
  // Degenerate rect exactly on one point.
  EXPECT_EQ(grid.CountInRect(Rect::Of(5, 5, 5, 5), points), 1u);
}

TEST(UniformGridTest, DensestCell) {
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({0.5, 0.5});  // all in cell 0
  pts.push_back({9.5, 9.5});
  UniformGrid grid(Rect::Of(0, 0, 10, 10), 2, 2);
  grid.Assign(pts);
  EXPECT_EQ(grid.DensestCell(), 0u);
  EXPECT_EQ(grid.CountInCell(0), 50u);
  EXPECT_EQ(grid.NumOccupiedCells(), 2u);
}

}  // namespace
}  // namespace vas
