// ThreadPool: future plumbing, FIFO draining on shutdown, and the
// concurrency invariants the async catalog builder depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace vas {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasksExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  futures.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.Submit([&counter]() {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter]() {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor must finish all 50, not drop the queued tail.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() { return 1; });
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  auto f = pool.Submit([]() { return std::this_thread::get_id(); });
  EXPECT_NE(f.get(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other can only finish if two
  // workers run them at the same time.
  ThreadPool pool(2);
  std::promise<void> a_started;
  std::promise<void> b_started;
  auto fa = pool.Submit([&]() {
    a_started.set_value();
    b_started.get_future().wait();
  });
  auto fb = pool.Submit([&]() {
    b_started.set_value();
    a_started.get_future().wait();
  });
  EXPECT_EQ(fa.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(fb.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
}

TEST(ThreadPoolTest, IsWorkerThreadIdentifiesOwnPoolOnly) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.IsWorkerThread());  // caller is not a worker
  // A task sees itself on its own pool and only that pool.
  auto f = pool.Submit([&]() {
    return pool.IsWorkerThread() && !other.IsWorkerThread();
  });
  EXPECT_TRUE(f.get());
  // Nested: a task on `other` submitting to `pool` is not a `pool`
  // worker, so queue-and-wait across distinct pools stays legal.
  auto nested = other.Submit([&]() {
    bool on_other = other.IsWorkerThread();
    bool on_pool = pool.IsWorkerThread();
    auto inner = pool.Submit([&]() { return pool.IsWorkerThread(); });
    return on_other && !on_pool && inner.get();
  });
  EXPECT_TRUE(nested.get());
}

TEST(ThreadPoolTest, PropagatesTaskExceptionsThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, MoveOnlyResultsWork) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() { return std::make_unique<int>(9); });
  EXPECT_EQ(*f.get(), 9);
}

}  // namespace
}  // namespace vas
