// Renderer substrate: viewport math, rasterization, density-scaled dots,
// colormaps, and the calibrated external-system cost models.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/generators.h"
#include "render/scatter_renderer.h"
#include "sampling/uniform_sampler.h"
#include "test_util.h"

namespace vas {
namespace {

TEST(ViewportTest, CornersMapToCorners) {
  Viewport vp(Rect::Of(0, 0, 10, 10), 100, 100);
  auto [x0, y0] = vp.ToPixel({0, 0});
  EXPECT_EQ(x0, 0);
  EXPECT_EQ(y0, 100);  // min y plots at the bottom
  auto [x1, y1] = vp.ToPixel({10, 10});
  EXPECT_EQ(x1, 100);
  EXPECT_EQ(y1, 0);
  auto [xm, ym] = vp.ToPixel({5, 5});
  EXPECT_EQ(xm, 50);
  EXPECT_EQ(ym, 50);
}

TEST(ViewportTest, ZoomedInShrinksWorld) {
  Viewport vp(Rect::Of(0, 0, 10, 10), 100, 100);
  Viewport zoom = vp.ZoomedIn({5, 5}, 4.0);
  EXPECT_NEAR(zoom.world().width(), 2.5, 1e-12);
  EXPECT_NEAR(zoom.world().height(), 2.5, 1e-12);
  EXPECT_TRUE(zoom.world().Contains({5, 5}));
}

TEST(ViewportTest, ZoomNearEdgeSlidesInside) {
  Viewport vp(Rect::Of(0, 0, 10, 10), 100, 100);
  Viewport zoom = vp.ZoomedIn({0.1, 0.1}, 5.0);
  EXPECT_GE(zoom.world().min_x, 0.0);
  EXPECT_GE(zoom.world().min_y, 0.0);
  EXPECT_NEAR(zoom.world().width(), 2.0, 1e-12);
}

TEST(ImageTest, SetGetAndClipping) {
  Image img(10, 5, {0, 0, 0});
  img.Set(3, 2, {255, 0, 0});
  EXPECT_EQ(img.Get(3, 2), (Rgb{255, 0, 0}));
  img.SetClipped(-1, 0, {1, 1, 1});    // ignored
  img.SetClipped(10, 0, {1, 1, 1});    // ignored
  img.SetClipped(0, 5, {1, 1, 1});     // ignored
  EXPECT_EQ(img.Get(0, 0), (Rgb{0, 0, 0}));
  EXPECT_NEAR(img.InkFraction({0, 0, 0}), 1.0 / 50.0, 1e-12);
}

TEST(ImageTest, WritesValidPpm) {
  Image img(4, 3);
  img.Set(0, 0, {10, 20, 30});
  std::string path =
      std::filesystem::temp_directory_path() / "vas_render_test.ppm";
  ASSERT_TRUE(img.WritePpm(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string header;
  in >> header;
  EXPECT_EQ(header, "P6");
  size_t w, h, maxval;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 4u);
  EXPECT_EQ(h, 3u);
  EXPECT_EQ(maxval, 255u);
  std::filesystem::remove(path);
}

TEST(ColormapTest, EndpointsAndMonotonicity) {
  Rgb lo = MapColor(ColormapKind::kViridis, 0.0);
  Rgb hi = MapColor(ColormapKind::kViridis, 1.0);
  EXPECT_EQ(lo, (Rgb{68, 1, 84}));
  EXPECT_EQ(hi, (Rgb{253, 231, 37}));
  // Clamping.
  EXPECT_EQ(MapColor(ColormapKind::kViridis, -5.0), lo);
  EXPECT_EQ(MapColor(ColormapKind::kViridis, 5.0), hi);
  // Grayscale is monotone in every channel.
  for (double t = 0.1; t <= 1.0; t += 0.1) {
    EXPECT_GE(MapColor(ColormapKind::kGrayscale, t).r,
              MapColor(ColormapKind::kGrayscale, t - 0.1).r);
  }
}

TEST(ColormapTest, NormalizeValue) {
  EXPECT_DOUBLE_EQ(NormalizeValue(5.0, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(NormalizeValue(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeValue(11.0, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(NormalizeValue(3.0, 7.0, 7.0), 0.5);  // degenerate
}

TEST(RendererTest, PointsLandWherePredicted) {
  Dataset d;
  d.Add({2.5, 2.5}, 0.0);
  ScatterRenderer::Options opt;
  opt.width_px = 100;
  opt.height_px = 100;
  opt.dot_radius_px = 0.0;
  ScatterRenderer renderer(opt);
  Viewport vp(Rect::Of(0, 0, 10, 10), 100, 100);
  Image img = renderer.Render(d, vp);
  EXPECT_FALSE(img.Get(25, 75) == opt.background);
  EXPECT_GT(img.InkFraction(opt.background), 0.0);
}

TEST(RendererTest, OutOfViewportPointsAreSkipped) {
  Dataset d;
  d.Add({100.0, 100.0}, 0.0);
  ScatterRenderer renderer;
  Viewport vp(Rect::Of(0, 0, 10, 10), 64, 64);
  Image img = renderer.Render(d, vp);
  EXPECT_DOUBLE_EQ(img.InkFraction(renderer.options().background), 0.0);
}

TEST(RendererTest, DensityScalesDotSize) {
  Dataset d;
  d.Add({3.0, 5.0}, 0.0);
  d.Add({7.0, 5.0}, 0.0);
  SampleSet s;
  s.ids = {0, 1};
  s.density = {1, 10000};
  ScatterRenderer::Options opt;
  opt.width_px = 200;
  opt.height_px = 200;
  opt.dot_radius_px = 1.0;
  ScatterRenderer renderer(opt);
  Viewport vp(Rect::Of(0, 0, 10, 10), 200, 200);
  Image img = renderer.RenderSample(d, s, vp);
  // Count ink in each half: the heavy point must draw a larger dot.
  size_t left = 0, right = 0;
  for (size_t y = 0; y < 200; ++y) {
    for (size_t x = 0; x < 200; ++x) {
      if (!(img.Get(x, y) == opt.background)) {
        (x < 100 ? left : right) += 1;
      }
    }
  }
  EXPECT_GT(right, 3 * left);
  EXPECT_GT(left, 0u);
}

TEST(RendererTest, JitterAddsInkProportionalToDensity) {
  // §V jitter presentation: a heavy sample point must spawn more
  // companion dots than a light one.
  Dataset d;
  d.Add({3.0, 5.0}, 0.0);
  d.Add({7.0, 5.0}, 0.0);
  SampleSet s;
  s.ids = {0, 1};
  s.density = {1, 100000};
  ScatterRenderer::Options opt;
  opt.width_px = 200;
  opt.height_px = 200;
  opt.dot_radius_px = 0.0;
  ScatterRenderer renderer(opt);
  Viewport vp(Rect::Of(0, 0, 10, 10), 200, 200);
  Image img = renderer.RenderSampleJittered(d, s, vp);
  size_t left = 0, right = 0;
  for (size_t y = 0; y < 200; ++y) {
    for (size_t x = 0; x < 200; ++x) {
      if (!(img.Get(x, y) == opt.background)) {
        (x < 100 ? left : right) += 1;
      }
    }
  }
  EXPECT_GE(left, 1u);           // the light point still draws itself
  EXPECT_GT(right, left + 5);    // ~5 decades -> ~20 companions
}

TEST(RendererTest, JitterIsDeterministicInSeed) {
  Dataset d;
  d.Add({5.0, 5.0}, 0.0);
  SampleSet s;
  s.ids = {0};
  s.density = {5000};
  ScatterRenderer renderer;
  Viewport vp(Rect::Of(0, 0, 10, 10), 128, 128);
  Image a = renderer.RenderSampleJittered(d, s, vp, 7);
  Image b = renderer.RenderSampleJittered(d, s, vp, 7);
  Image c = renderer.RenderSampleJittered(d, s, vp, 8);
  size_t same_ab = 0, same_ac = 0, total = 128 * 128;
  for (size_t y = 0; y < 128; ++y) {
    for (size_t x = 0; x < 128; ++x) {
      if (a.Get(x, y) == b.Get(x, y)) ++same_ab;
      if (a.Get(x, y) == c.Get(x, y)) ++same_ac;
    }
  }
  EXPECT_EQ(same_ab, total);
  EXPECT_LT(same_ac, total);  // different seed, different jitter
}

TEST(RendererTest, JitterWithoutDensityEqualsPlainDots) {
  Dataset d;
  d.Add({5.0, 5.0}, 0.0);
  SampleSet s;
  s.ids = {0};  // no density column
  ScatterRenderer renderer;
  Viewport vp(Rect::Of(0, 0, 10, 10), 64, 64);
  Image img = renderer.RenderSampleJittered(d, s, vp);
  // Exactly one dot's worth of ink (radius 1 -> up to ~5 px).
  double ink = img.InkFraction(renderer.options().background);
  EXPECT_GT(ink, 0.0);
  EXPECT_LT(ink, 10.0 / (64.0 * 64.0));
}

TEST(RendererTest, RenderCountsAccumulates) {
  ScatterRenderer::Options opt;
  opt.width_px = 10;
  opt.height_px = 10;
  ScatterRenderer renderer(opt);
  Viewport vp(Rect::Of(0, 0, 10, 10), 10, 10);
  std::vector<Point> pts = {{0.5, 9.5}, {0.5, 9.5}, {5.5, 4.5}};
  auto counts = renderer.RenderCounts(pts, {}, vp);
  // (0.5, 9.5) -> pixel (0, 0); appears twice.
  EXPECT_EQ(counts[0], 2u);
  // Weighted variant.
  auto weighted = renderer.RenderCounts(pts, {7, 1, 2}, vp);
  EXPECT_EQ(weighted[0], 8u);
}

TEST(VizTimeModelTest, CalibratedAgainstPaperFigure2) {
  VizTimeModel tableau = VizTimeModel::Tableau();
  // ~4 minutes at 50M points.
  EXPECT_NEAR(tableau.SecondsFor(50'000'000), 240.0, 60.0);
  // Over the 2 s interactive limit at 1M points (paper: >2 s at 1M).
  EXPECT_GT(tableau.SecondsFor(1'000'000), 2.0);
  VizTimeModel mathgl = VizTimeModel::MathGL();
  EXPECT_GT(mathgl.SecondsFor(1'000'000), 2.0);
  EXPECT_LT(mathgl.SecondsFor(1'000'000), tableau.SecondsFor(1'000'000));
  // Linear: doubling points roughly doubles cost.
  EXPECT_NEAR(tableau.SecondsFor(20'000'000) / tableau.SecondsFor(10'000'000),
              2.0, 0.1);
}

// --- Scalar vs binned pipeline identity. The binned (vectorized)
// pipeline must be pixel-identical to the per-point scalar loop on any
// input; the tile cache's byte-identity contract depends on it.

Image RenderWith(ScatterRenderer::Options opt,
                 ScatterRenderer::Options::Pipeline pipeline,
                 const Dataset& d, const SampleSet& s, const Viewport& vp) {
  opt.pipeline = pipeline;
  return ScatterRenderer(opt).RenderSample(d, s, vp);
}

void ExpectPixelIdentical(const Image& a, const Image& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  for (size_t y = 0; y < a.height(); ++y) {
    for (size_t x = 0; x < a.width(); ++x) {
      ASSERT_EQ(a.Get(x, y), b.Get(x, y)) << "(" << x << "," << y << ")";
    }
  }
}

void ExpectPipelinesAgree(ScatterRenderer::Options opt, const Dataset& d,
                          const SampleSet& s, const Viewport& vp) {
  Image scalar =
      RenderWith(opt, ScatterRenderer::Options::Pipeline::kScalar, d, s, vp);
  Image binned =
      RenderWith(opt, ScatterRenderer::Options::Pipeline::kBinned, d, s, vp);
  ExpectPixelIdentical(scalar, binned);
}

SampleSet EveryNth(const Dataset& d, size_t n, bool with_density) {
  SampleSet s;
  for (size_t i = 0; i < d.size(); i += n) {
    s.ids.push_back(i);
    if (with_density) s.density.push_back(i * 7 % 997 + 1);
  }
  return s;
}

TEST(PipelineIdentityTest, PlainDotsOnSkewedData) {
  Dataset d = test::Skewed(20000);
  SampleSet s = EveryNth(d, 3, /*with_density=*/false);
  ScatterRenderer::Options opt;
  opt.width_px = 256;
  opt.height_px = 256;
  ExpectPipelinesAgree(opt, d, s, Viewport(d.Bounds(), 256, 256));
}

TEST(PipelineIdentityTest, DensityAndValuesWithOverlaps) {
  // Values drive per-dot colors (overlap order matters) and density
  // drives per-dot radii (stencil cache) at once.
  Dataset d;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  std::uniform_real_distribution<double> value(-3.0, 3.0);
  for (size_t i = 0; i < 8000; ++i) {
    d.Add({coord(rng), coord(rng)}, value(rng));
  }
  SampleSet s = EveryNth(d, 2, /*with_density=*/true);
  ScatterRenderer::Options opt;
  opt.width_px = 200;
  opt.height_px = 160;
  opt.density_radius_scale = 0.8;
  ExpectPipelinesAgree(opt, d, s, Viewport(d.Bounds(), 200, 160));
}

TEST(PipelineIdentityTest, ZoomedViewportCullsTheSamePoints) {
  Dataset d = test::Skewed(15000);
  SampleSet s = EveryNth(d, 1, /*with_density=*/true);
  ScatterRenderer::Options opt;
  opt.width_px = 128;
  opt.height_px = 128;
  Viewport full(d.Bounds(), 128, 128);
  ExpectPipelinesAgree(opt, d, s, full.ZoomedIn(d.Bounds().Center(), 8.0));
}

TEST(PipelineIdentityTest, EdgePointsAndLargeDots) {
  // Points exactly on every viewport edge and corner, with radii big
  // enough that stamps clip against all four image borders. Max-edge
  // points transform to pixel column/row width_px/height_px — outside
  // the raster — yet their dots still paint clipped coverage.
  Dataset d;
  for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    d.Add({10.0 * t, 0.0}, 0.0);
    d.Add({10.0 * t, 10.0}, 0.0);
    d.Add({0.0, 10.0 * t}, 0.0);
    d.Add({10.0, 10.0 * t}, 0.0);
  }
  d.Add({10.1, 5.0}, 0.0);  // just outside: culled by both pipelines
  SampleSet s = EveryNth(d, 1, /*with_density=*/true);
  for (auto& dens : s.density) dens = 100000;  // forces max_dot_radius_px
  ScatterRenderer::Options opt;
  opt.width_px = 64;
  opt.height_px = 64;
  opt.density_radius_scale = 2.0;
  Viewport vp(Rect::Of(0, 0, 10, 10), 64, 64);
  ExpectPipelinesAgree(opt, d, s, vp);
  Image img =
      RenderWith(opt, ScatterRenderer::Options::Pipeline::kBinned, d, s, vp);
  // The corner dot is clipped, not dropped: its quarter-disc shows up.
  EXPECT_FALSE(img.Get(0, 63) == opt.background);
  EXPECT_GT(img.InkFraction(opt.background), 0.0);
}

TEST(PipelineIdentityTest, SubPixelAndZeroRadiusDots) {
  Dataset d = test::Skewed(5000);
  SampleSet s = EveryNth(d, 1, /*with_density=*/false);
  for (double radius : {0.0, 0.5, 1.5}) {
    ScatterRenderer::Options opt;
    opt.width_px = 100;
    opt.height_px = 100;
    opt.dot_radius_px = radius;
    ExpectPipelinesAgree(opt, d, s, Viewport(d.Bounds(), 100, 100));
  }
}

TEST(RendererTest, JitteredDotsNearEdgesStayClipped) {
  // Jitter can push companion dot centers outside the raster; DrawDot
  // must clamp their coverage instead of writing out of bounds.
  Dataset d;
  d.Add({0.05, 0.05}, 0.0);
  d.Add({9.95, 9.95}, 0.0);
  SampleSet s;
  s.ids = {0, 1};
  s.density = {100000, 100000};
  ScatterRenderer::Options opt;
  opt.width_px = 32;
  opt.height_px = 32;
  opt.jitter_radius_px = 20.0;
  ScatterRenderer renderer(opt);
  Viewport vp(Rect::Of(0, 0, 10, 10), 32, 32);
  Image img = renderer.RenderSampleJittered(d, s, vp);
  EXPECT_GT(img.InkFraction(opt.background), 0.0);
}

TEST(RendererIntegrationTest, SampledRenderIsCheaperSameCoverage) {
  Dataset d = test::Skewed(20000);
  UniformReservoirSampler sampler(3);
  SampleSet s = sampler.Sample(d, 2000);
  ScatterRenderer renderer;
  Viewport vp(d.Bounds(), 512, 512);
  Image full = renderer.Render(d, vp);
  Image sampled = renderer.RenderSample(d, s, vp);
  double full_ink = full.InkFraction(renderer.options().background);
  double sample_ink = sampled.InkFraction(renderer.options().background);
  EXPECT_GT(sample_ink, 0.0);
  EXPECT_LE(sample_ink, full_ink + 1e-12);
}

}  // namespace
}  // namespace vas
