// The observability layer: sharded counters and histograms staying
// exact under concurrent writers, the Prometheus text exposition
// (golden-checked), request traces and the ring at /debug/requests,
// and the structured log line formats.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vas::obs {
namespace {

TEST(CounterTest, CountsExactlyAcrossThreads) {
  Counter counter;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (size_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, IncrementByDelta) {
  Counter counter;
  counter.Increment(5);
  counter.Increment(37);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-20);
  EXPECT_EQ(gauge.Value(), -13);  // gauges go negative, counters don't
}

TEST(MetricsEnabledTest, DisabledWritesAreDropped) {
  Counter counter;
  Gauge gauge;
  Histogram histogram({10, 100});
  SetMetricsEnabled(false);
  counter.Increment();
  gauge.Set(5);
  histogram.Observe(7);
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.TotalCount(), 0u);
  counter.Increment();  // and writes resume once re-enabled
  EXPECT_EQ(counter.Value(), 1u);
}

TEST(HistogramTest, BucketsSumAndCount) {
  Histogram histogram({10, 100, 1000});
  histogram.Observe(5);     // <= 10
  histogram.Observe(10);    // boundary is inclusive
  histogram.Observe(99);    // <= 100
  histogram.Observe(5000);  // +Inf overflow
  EXPECT_EQ(histogram.TotalCount(), 4u);
  EXPECT_EQ(histogram.Sum(), 5u + 10 + 99 + 5000);
  std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 boundaries + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(HistogramTest, CountsExactlyAcrossThreads) {
  Histogram histogram(LatencyBoundariesNs());
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t]() {
      for (size_t i = 0; i < kPerThread; ++i) {
        histogram.Observe(1000 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(histogram.TotalCount(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : histogram.BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram histogram({100, 200});
  // 100 observations uniform in the (100, 200] bucket: the median
  // interpolates to mid-bucket.
  for (int i = 0; i < 100; ++i) histogram.Observe(150);
  double p50 = histogram.Quantile(0.5);
  EXPECT_GT(p50, 100.0);
  EXPECT_LE(p50, 200.0);
  EXPECT_EQ(histogram.Quantile(0.0), histogram.Quantile(-1.0));
}

TEST(HistogramTest, QuantileOfOverflowReportsLastBoundary) {
  Histogram histogram({100, 200});
  histogram.Observe(100000);
  EXPECT_EQ(histogram.Quantile(0.99), 200.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram histogram({100});
  EXPECT_EQ(histogram.Quantile(0.95), 0.0);
}

TEST(LatencyBoundariesTest, StrictlyAscendingMicrosecondsToTenSeconds) {
  const std::vector<uint64_t>& b = LatencyBoundariesNs();
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.front(), 1000u);           // 1µs
  EXPECT_EQ(b.back(), 10000000000ull);   // 10s
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameObject) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("t_total", "help", {{"k", "v"}});
  Counter* b = registry.GetCounter("t_total", "help", {{"k", "v"}});
  Counter* c = registry.GetCounter("t_total", "help", {{"k", "other"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MetricsRegistryTest, ExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("vas_a_total", "A counter.")->Increment(3);
  registry.GetGauge("vas_b", "A gauge.")->Set(-2);
  Histogram* h = registry.GetHistogram("vas_c_ns", "A histogram.", {},
                                       std::vector<uint64_t>{10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  EXPECT_EQ(registry.RenderPrometheusText(),
            "# HELP vas_a_total A counter.\n"
            "# TYPE vas_a_total counter\n"
            "vas_a_total 3\n"
            "# HELP vas_b A gauge.\n"
            "# TYPE vas_b gauge\n"
            "vas_b -2\n"
            "# HELP vas_c_ns A histogram.\n"
            "# TYPE vas_c_ns histogram\n"
            "vas_c_ns_bucket{le=\"10\"} 1\n"
            "vas_c_ns_bucket{le=\"100\"} 2\n"
            "vas_c_ns_bucket{le=\"+Inf\"} 3\n"
            "vas_c_ns_sum 555\n"
            "vas_c_ns_count 3\n");
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("vas_l_total", "", {{"path", "a\\b\"c\nd"}})
      ->Increment();
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("vas_l_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, CallbackGaugeRendersLiveValue) {
  MetricsRegistry registry;
  int64_t value = 41;
  registry.SetCallbackGauge("vas_cb", "Live.", {},
                            [&value]() { return value; });
  value = 42;
  std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("vas_cb 42\n"), std::string::npos);
  registry.RemoveCallbackGauge("vas_cb", {});
  EXPECT_EQ(registry.RenderPrometheusText().find("vas_cb"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndWrites) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      for (size_t i = 0; i < kPerThread; ++i) {
        registry.GetCounter("vas_conc_total", "shared")->Increment();
        registry
            .GetHistogram("vas_conc_ns", "shared", {},
                          std::vector<uint64_t>{100, 1000})
            ->Observe(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("vas_conc_total", "shared")->Value(),
            kThreads * kPerThread);
  EXPECT_EQ(registry
                .GetHistogram("vas_conc_ns", "shared", {},
                              std::vector<uint64_t>{100, 1000})
                ->TotalCount(),
            kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ContentTypeIsPrometheusText) {
  EXPECT_STREQ(MetricsRegistry::ExpositionContentType(),
               "text/plain; version=0.0.4; charset=utf-8");
}

TEST(TraceTest, SpansAndAnnotations) {
  uint64_t t0 = MonotonicNowNs();
  RequestTrace trace("vas-abc", "/tiles/t/1/2/3.png", t0);
  size_t span = trace.BeginSpan("render");
  trace.EndSpan(span);
  trace.Annotate(span, "points", 1234);
  trace.AddCompleteSpan("encode", t0 + 10, t0 + 30);
  trace.set_http_status(200);
  trace.Finish();
  EXPECT_TRUE(trace.finished());
  EXPECT_EQ(trace.request_id(), "vas-abc");
  EXPECT_EQ(trace.http_status(), 200);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].name, "render");
  ASSERT_EQ(trace.spans()[0].annotations.size(), 1u);
  EXPECT_EQ(trace.spans()[0].annotations[0].first, "points");
  EXPECT_EQ(trace.spans()[0].annotations[0].second, 1234);
  EXPECT_EQ(trace.SpanDurationNs("encode"), 20u);
  EXPECT_EQ(trace.SpanDurationNs("absent"), 0u);
  EXPECT_GE(trace.total_ns(), trace.SpanDurationNs("render"));
}

TEST(TraceTest, ScopedSpanIsNullSafe) {
  { ScopedSpan span(nullptr, "noop"); }  // must not crash
  RequestTrace trace("id", "/x", MonotonicNowNs());
  {
    ScopedSpan span(&trace, "scoped");
    span.Annotate("k", 1);
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "scoped");
}

TEST(TraceTest, ToJsonShape) {
  uint64_t t0 = MonotonicNowNs();
  RequestTrace trace("vas-1", "/a\"b", t0);
  trace.AddCompleteSpan("parse", t0, t0 + 5);
  trace.set_http_status(404);
  trace.Finish();
  std::string json = TraceToJson(trace);
  EXPECT_NE(json.find("\"request_id\":\"vas-1\""), std::string::npos);
  EXPECT_NE(json.find("\"target\":\"/a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":404"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":5"), std::string::npos);
}

TEST(TraceRingTest, KeepsNewestUpToCapacity) {
  TraceRing ring(3);
  for (int i = 0; i < 5; ++i) {
    auto trace = std::make_shared<RequestTrace>("vas-" + std::to_string(i),
                                                "/t", MonotonicNowNs());
    trace->Finish();
    ring.Push(std::move(trace));
  }
  auto snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);  // capacity bounds retention
  EXPECT_EQ(snapshot[0]->request_id(), "vas-4");  // newest first
  EXPECT_EQ(snapshot[1]->request_id(), "vas-3");
  EXPECT_EQ(snapshot[2]->request_id(), "vas-2");
}

TEST(TraceTest, MintedIdsAreUniqueAndPrefixed) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    std::string id = MintRequestId();
    EXPECT_EQ(id.rfind("vas-", 0), 0u) << id;
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(LogTest, TextFormatGolden) {
  LogFields fields;
  fields.Add("request_id", "vas-1").Add("total_ms", int64_t{42}).Add(
      "hit", true);
  EXPECT_EQ(FormatLogLine(LogLevel::kWarn, "slow request", fields,
                          LogFormat::kText, 1700000000000),
            "[warn] slow request request_id=vas-1 total_ms=42 hit=true\n");
}

TEST(LogTest, JsonFormatGolden) {
  LogFields fields;
  fields.Add("path", "/a\"b\\c").Add("n", int64_t{3});
  EXPECT_EQ(FormatLogLine(LogLevel::kError, "bad \"thing\"", fields,
                          LogFormat::kJson, 1700000000000),
            "{\"ts_ms\":1700000000000,\"level\":\"error\","
            "\"msg\":\"bad \\\"thing\\\"\","
            "\"path\":\"/a\\\"b\\\\c\",\"n\":3}\n");
}

TEST(LogTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
}

TEST(LogTest, DoubleFieldsAreUnquoted) {
  LogFields fields;
  fields.Add("ratio", 1.5);
  std::string line = FormatLogLine(LogLevel::kInfo, "m", fields,
                                   LogFormat::kJson, 0);
  EXPECT_NE(line.find("\"ratio\":1.5"), std::string::npos) << line;
}

}  // namespace
}  // namespace vas::obs
