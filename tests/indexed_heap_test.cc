// Addressable max-heap: Top() must track arbitrary key updates.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/indexed_heap.h"
#include "util/random.h"

namespace vas {
namespace {

TEST(IndexedHeapTest, InitialKeysAreZero) {
  IndexedMaxHeap heap(5);
  EXPECT_EQ(heap.capacity(), 5u);
  EXPECT_DOUBLE_EQ(heap.TopKey(), 0.0);
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(heap.KeyOf(i), 0.0);
}

TEST(IndexedHeapTest, UpdateMovesTop) {
  IndexedMaxHeap heap(4);
  heap.Update(2, 10.0);
  EXPECT_EQ(heap.Top(), 2u);
  heap.Update(0, 20.0);
  EXPECT_EQ(heap.Top(), 0u);
  heap.Update(0, 5.0);  // decrease: 2 becomes top again
  EXPECT_EQ(heap.Top(), 2u);
  EXPECT_DOUBLE_EQ(heap.TopKey(), 10.0);
}

TEST(IndexedHeapTest, AddAccumulates) {
  IndexedMaxHeap heap(3);
  heap.Add(1, 2.5);
  heap.Add(1, 2.5);
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 5.0);
  EXPECT_EQ(heap.Top(), 1u);
  heap.Add(1, -5.0);
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 0.0);
}

TEST(IndexedHeapTest, SingleSlot) {
  IndexedMaxHeap heap(1);
  heap.Update(0, -3.0);
  EXPECT_EQ(heap.Top(), 0u);
  EXPECT_DOUBLE_EQ(heap.TopKey(), -3.0);
}

class IndexedHeapRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexedHeapRandomTest, TopAlwaysMatchesLinearScan) {
  const size_t n = 64;
  IndexedMaxHeap heap(n);
  std::vector<double> shadow(n, 0.0);
  Rng rng(GetParam());
  for (int step = 0; step < 5000; ++step) {
    size_t slot = rng.Below(n);
    if (rng.Bernoulli(0.5)) {
      double key = rng.Uniform(-100, 100);
      heap.Update(slot, key);
      shadow[slot] = key;
    } else {
      double delta = rng.Uniform(-10, 10);
      heap.Add(slot, delta);
      shadow[slot] += delta;
    }
    double want = *std::max_element(shadow.begin(), shadow.end());
    EXPECT_DOUBLE_EQ(heap.TopKey(), want);
    EXPECT_DOUBLE_EQ(shadow[heap.Top()], want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedHeapRandomTest,
                         ::testing::Values(3, 7, 31));

}  // namespace
}  // namespace vas
