// SampleSet persistence: round trips, corruption handling, validation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/density.h"
#include "core/interchange.h"
#include "data/generators.h"
#include "sampling/sample_io.h"
#include "test_util.h"

namespace vas {
namespace {

class SampleIoTest : public test::TempFileTest {
 protected:
  SampleIoTest() : TempFileTest("vas_sample_io_test.bin") {}
};

TEST_F(SampleIoTest, RoundTripPlainSample) {
  SampleSet s;
  s.method = "vas";
  s.ids = {3, 1, 4, 159, 26};
  ASSERT_TRUE(WriteSampleSet(s, path()).ok());
  auto back = ReadSampleSet(path());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->method, "vas");
  EXPECT_EQ(back->ids, s.ids);
  EXPECT_FALSE(back->has_density());
}

TEST_F(SampleIoTest, RoundTripWithDensity) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 10, 10), 1000, 1);
  InterchangeSampler sampler;
  SampleSet s = WithDensity(d, sampler.Sample(d, 50));
  ASSERT_TRUE(WriteSampleSet(s, path()).ok());
  auto back = ReadSampleSet(path());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->method, "vas+density");
  EXPECT_EQ(back->ids, s.ids);
  EXPECT_EQ(back->density, s.density);
  EXPECT_TRUE(ValidateSampleAgainst(*back, d.size()).ok());
}

TEST_F(SampleIoTest, EmptySampleRoundTrips) {
  SampleSet s;
  s.method = "empty";
  ASSERT_TRUE(WriteSampleSet(s, path()).ok());
  auto back = ReadSampleSet(path());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST_F(SampleIoTest, RejectsMismatchedDensity) {
  SampleSet s;
  s.method = "broken";
  s.ids = {1, 2, 3};
  s.density = {7};  // not parallel
  EXPECT_FALSE(WriteSampleSet(s, path()).ok());
  EXPECT_FALSE(ValidateSampleAgainst(s, 100).ok());
}

TEST_F(SampleIoTest, RejectsGarbageFile) {
  {
    std::ofstream out(path(), std::ios::binary);
    out << "garbage garbage garbage garbage garbage garbage";
  }
  EXPECT_FALSE(ReadSampleSet(path()).ok());
}

TEST_F(SampleIoTest, RejectsTruncatedFile) {
  SampleSet s;
  s.method = "vas";
  for (size_t i = 0; i < 100; ++i) s.ids.push_back(i);
  ASSERT_TRUE(WriteSampleSet(s, path()).ok());
  auto size = std::filesystem::file_size(path());
  std::filesystem::resize_file(path(), size / 2);
  EXPECT_FALSE(ReadSampleSet(path()).ok());
}

TEST(SampleValidationTest, OutOfRangeIdsCaught) {
  SampleSet s;
  s.ids = {0, 5, 99};
  EXPECT_TRUE(ValidateSampleAgainst(s, 100).ok());
  EXPECT_EQ(ValidateSampleAgainst(s, 99).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace vas
