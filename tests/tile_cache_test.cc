// TileCache: the sharded byte-budgeted LRU fronting tile renders.
// Covers hit/miss accounting, LRU eviction under the per-shard budget,
// the oversized-entry guarantee (a tile larger than the budget still
// serves once), prefix invalidation (the rung-upgrade path), and
// concurrent mixed traffic (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/tile_cache.h"

namespace vas {
namespace {

std::shared_ptr<const std::string> Bytes(size_t n, char fill = 'x') {
  return std::make_shared<const std::string>(n, fill);
}

TileCache::Options SingleShard(size_t budget) {
  TileCache::Options options;
  options.budget_bytes = budget;
  options.shards = 1;  // deterministic LRU order for eviction tests
  return options;
}

TEST(TileCacheTest, MissThenHit) {
  TileCache cache(SingleShard(1 << 20));
  EXPECT_EQ(cache.Get("a"), nullptr);
  auto value = Bytes(100);
  cache.Put("a", value);
  auto got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), value.get()) << "cache must serve the shared bytes";
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 100u);
}

TEST(TileCacheTest, PutReplacesExistingKey) {
  TileCache cache(SingleShard(1 << 20));
  cache.Put("a", Bytes(10, '1'));
  cache.Put("a", Bytes(20, '2'));
  auto got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->size(), 20u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(TileCacheTest, EvictsLeastRecentlyUsedUnderBudget) {
  // Budget fits two ~1KiB entries. Touch "a" so "b" is the LRU victim
  // when "c" arrives.
  TileCache cache(SingleShard(2 * 1200));
  cache.Put("a", Bytes(1024));
  cache.Put("b", Bytes(1024));
  EXPECT_NE(cache.Get("a"), nullptr);
  cache.Put("c", Bytes(1024));
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr) << "LRU entry must be evicted";
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(TileCacheTest, OversizedEntryStillServesOnce) {
  TileCache cache(SingleShard(256));
  auto huge = Bytes(4096);
  cache.Put("huge", huge);
  // Its own Put must not evict it; the next Put may.
  auto got = cache.Get("huge");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), huge.get());
  cache.Put("next", Bytes(16));
  EXPECT_EQ(cache.Get("huge"), nullptr);
}

TEST(TileCacheTest, EvictedBytesSurviveWhileAResponseHoldsThem) {
  TileCache cache(SingleShard(256));
  cache.Put("tile", Bytes(2048, 't'));
  auto in_flight = cache.Get("tile");
  ASSERT_NE(in_flight, nullptr);
  cache.Put("other", Bytes(2048));  // evicts "tile"
  EXPECT_EQ(cache.Get("tile"), nullptr);
  // The response in flight still owns the bytes.
  EXPECT_EQ(in_flight->size(), 2048u);
  EXPECT_EQ((*in_flight)[0], 't');
}

TEST(TileCacheTest, InvalidatePrefixDropsOnlyThatNamespace) {
  // Several shards: invalidation must sweep all of them.
  TileCache::Options options;
  options.budget_bytes = 1 << 20;
  options.shards = 4;
  TileCache cache(options);
  for (int i = 0; i < 8; ++i) {
    cache.Put("taxi\n0/0/" + std::to_string(i), Bytes(64));
    cache.Put("geo\n0/0/" + std::to_string(i), Bytes(64));
  }
  EXPECT_EQ(cache.InvalidatePrefix("taxi\n"), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cache.Get("taxi\n0/0/" + std::to_string(i)), nullptr);
    EXPECT_NE(cache.Get("geo\n0/0/" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(cache.stats().invalidated, 8u);
  EXPECT_EQ(cache.InvalidatePrefix("taxi\n"), 0u);
}

TEST(TileCacheTest, ClearDropsEverything) {
  TileCache cache(SingleShard(1 << 20));
  cache.Put("a", Bytes(10));
  cache.Put("b", Bytes(10));
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(TileCacheTest, ConcurrentMixedTrafficIsSafe) {
  // Readers, writers, and an invalidator hammer a small budget so
  // eviction churns constantly; under TSan this is the race check, and
  // every returned value must be intact (the key's fill byte).
  TileCache::Options options;
  options.budget_bytes = 64 * 1024;
  options.shards = 4;
  TileCache cache(options);
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &corrupt, t]() {
      for (int i = 0; i < 400; ++i) {
        std::string key = "t" + std::to_string(t % 2) + "\n" +
                          std::to_string(i % 37);
        char fill = static_cast<char>('a' + (i % 37) % 26);
        cache.Put(key, Bytes(1024, fill));
        if (auto got = cache.Get(key)) {
          if (got->size() != 1024 || (*got)[0] != fill) corrupt = true;
        }
        if (i % 100 == 99) cache.InvalidatePrefix("t0\n");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(corrupt.load());
  auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace vas
