// Shared test fixtures: the standard seeded datasets every suite draws
// from, and an RAII scratch-file helper for I/O round-trip tests. Keeping
// the generator defaults here (seed 7 Geolife, seed 11 SPLOM — the same
// defaults bench_common.h uses) means every suite exercises the same
// deterministic workload.
#ifndef VAS_TESTS_TEST_UTIL_H_
#define VAS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <system_error>

#include "data/dataset.h"
#include "data/generators.h"

namespace vas {
namespace test {

/// The standard skewed map-plot workload (Geolife substitute):
/// heavy-tailed hot spots, road filaments, sparse background.
/// Deterministic in (n, seed).
inline Dataset Skewed(size_t n, uint64_t seed = 7) {
  GeolifeLikeGenerator::Options opt;
  opt.num_points = n;
  opt.seed = seed;
  return GeolifeLikeGenerator(opt).Generate();
}

/// The SPLOM workload projected onto its first two columns with the
/// third as color/value. Deterministic in (n, seed).
inline Dataset Splom(size_t n, uint64_t seed = 11) {
  SplomGenerator::Options opt;
  opt.num_rows = n;
  opt.seed = seed;
  return SplomGenerator(opt).Generate(0, 1, 2);
}

/// Drawn once per process; keeps concurrent runs of the same test
/// binary from sharing scratch-file paths, without POSIX-only getpid().
inline const std::string& ProcessUniqueSuffix() {
  static const std::string suffix = std::to_string(std::random_device{}());
  return suffix;
}

/// A scratch file under the system temp dir, removed on destruction
/// (and on construction, in case a previous crashed run left one). The
/// name gets a per-process suffix so concurrent runs of the same test
/// binary cannot clobber each other's file.
class ScopedTempFile {
 public:
  explicit ScopedTempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               (ProcessUniqueSuffix() + "_" + name))
                  .string()) {
    Remove();
  }
  ~ScopedTempFile() { Remove(); }
  ScopedTempFile(const ScopedTempFile&) = delete;
  ScopedTempFile& operator=(const ScopedTempFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  void Remove() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

/// Fixture base for suites that need one scratch file per test.
class TempFileTest : public ::testing::Test {
 protected:
  explicit TempFileTest(const std::string& name) : file_(name) {}
  const std::string& path() const { return file_.path(); }

 private:
  ScopedTempFile file_;
};

}  // namespace test
}  // namespace vas

#endif  // VAS_TESTS_TEST_UTIL_H_
