// Parallel sharded VAS: budget apportionment properties and
// quality/validity parity with the single-threaded sampler.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <numeric>
#include <set>

#include "core/interchange.h"
#include "core/objective.h"
#include "core/parallel.h"
#include "data/generators.h"
#include "sampling/uniform_sampler.h"
#include "test_util.h"

namespace vas {
namespace {

TEST(SplitBudgetTest, ProportionalToSupport) {
  auto quota = ParallelInterchangeSampler::SplitBudget(
      {30, 10, 60}, {1000, 1000, 1000}, 100);
  EXPECT_EQ(quota, (std::vector<size_t>{30, 10, 60}));
}

TEST(SplitBudgetTest, ClampsToAvailability) {
  auto quota = ParallelInterchangeSampler::SplitBudget(
      {50, 50}, {5, 1000}, 100);
  EXPECT_EQ(quota[0], 5u);
  EXPECT_EQ(quota[1], 95u);
}

TEST(SplitBudgetTest, SumsToBudget) {
  for (size_t k : {0ul, 1ul, 7ul, 100ul, 10000ul}) {
    auto quota = ParallelInterchangeSampler::SplitBudget(
        {13, 1, 7, 0, 29}, {40, 40, 2, 40, 40}, k);
    size_t total = std::accumulate(quota.begin(), quota.end(), size_t{0});
    EXPECT_EQ(total, std::min(k, size_t{162})) << "k=" << k;
    EXPECT_LE(quota[2], 2u);
    // A zero-support shard receives budget only when the supported
    // shards' availability cannot absorb it (k=100+ forces overflow).
    if (k <= 50) {
      EXPECT_EQ(quota[3], 0u) << "k=" << k;
    }
  }
}

TEST(SplitBudgetTest, ZeroSupportEverywhere) {
  auto quota = ParallelInterchangeSampler::SplitBudget({0, 0}, {10, 10}, 5);
  EXPECT_EQ(std::accumulate(quota.begin(), quota.end(), size_t{0}), 0u);
}

TEST(SplitBudgetTest, BudgetLargerThanTotalAvailability) {
  // k far beyond what the shards hold: every shard is saturated to its
  // availability and nothing more.
  auto quota = ParallelInterchangeSampler::SplitBudget(
      {10, 20, 30}, {4, 8, 16}, 1000000);
  EXPECT_EQ(quota, (std::vector<size_t>{4, 8, 16}));
}

TEST(SplitBudgetTest, ZeroSupportShardAbsorbsOverflowOnly) {
  // The zero-support shard gets nothing while supported shards have
  // headroom, but must absorb the overflow once they saturate —
  // otherwise the split cannot reach the budget at all.
  auto fits = ParallelInterchangeSampler::SplitBudget({40, 0}, {100, 100},
                                                      60);
  EXPECT_EQ(fits, (std::vector<size_t>{60, 0}));
  auto overflow = ParallelInterchangeSampler::SplitBudget({40, 0}, {50, 100},
                                                          120);
  EXPECT_EQ(overflow[0], 50u);
  EXPECT_EQ(overflow[1], 70u);
}

TEST(SplitBudgetTest, SingleShardDegenerateSplit) {
  auto quota = ParallelInterchangeSampler::SplitBudget({7}, {500}, 123);
  EXPECT_EQ(quota, (std::vector<size_t>{123}));
  auto clamped = ParallelInterchangeSampler::SplitBudget({7}, {50}, 123);
  EXPECT_EQ(clamped, (std::vector<size_t>{50}));
  auto empty = ParallelInterchangeSampler::SplitBudget({0}, {50}, 10);
  EXPECT_EQ(empty, (std::vector<size_t>{0}));
}

TEST(SplitBudgetTest, EmptyShardListYieldsEmptyQuota) {
  auto quota = ParallelInterchangeSampler::SplitBudget({}, {}, 10);
  EXPECT_TRUE(quota.empty());
}

class ParallelSamplerTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelSamplerTest, ProducesValidSample) {
  Dataset d = test::Skewed(20000);
  ParallelInterchangeSampler::Options opt;
  opt.num_shards = GetParam();
  ParallelInterchangeSampler sampler(opt);
  SampleSet s = sampler.Sample(d, 500);
  EXPECT_EQ(s.size(), 500u);
  std::set<size_t> unique(s.ids.begin(), s.ids.end());
  EXPECT_EQ(unique.size(), 500u);
  for (size_t id : s.ids) EXPECT_LT(id, d.size());
}

TEST_P(ParallelSamplerTest, QualityNearSingleThreaded) {
  Dataset d = test::Skewed(20000);
  double epsilon = GaussianKernel::DefaultEpsilon(d.Bounds());
  GaussianKernel pair = GaussianKernel::PairKernelFor(epsilon);

  ParallelInterchangeSampler::Options popt;
  popt.num_shards = GetParam();
  double par_obj = PairwiseObjective(
      ParallelInterchangeSampler(popt).Sample(d, 300).MaterializePoints(d),
      pair);

  InterchangeSampler single;
  double single_obj = PairwiseObjective(
      single.Sample(d, 300).MaterializePoints(d), pair);

  UniformReservoirSampler uniform(3);
  double random_obj = PairwiseObjective(
      uniform.Sample(d, 300).MaterializePoints(d), pair);

  // Sharding costs quality at strip borders (uncontested cross-strip
  // pairs), growing with shard count, but the sample must stay far
  // closer to the single-threaded optimum than to random sampling.
  EXPECT_LT(par_obj, random_obj / 2.0);
  EXPECT_LT(par_obj, 5.0 * single_obj + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Shards, ParallelSamplerTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelSamplerTest, DeterministicAcrossRuns) {
  Dataset d = test::Skewed(100000);
  ParallelInterchangeSampler::Options opt;
  opt.num_shards = 4;
  SampleSet a = ParallelInterchangeSampler(opt).Sample(d, 200);
  SampleSet b = ParallelInterchangeSampler(opt).Sample(d, 200);
  EXPECT_EQ(a.ids, b.ids);
}

TEST(ParallelSamplerTest, SharedPoolFromWithinPoolTaskDoesNotDeadlock) {
  // Regression: Sample() used to queue one task per shard and block on
  // the futures. Invoked *from* a task of the same pool (the async
  // catalog builder does exactly this when the rung sampler shares the
  // build pool), the blocked worker starved its own shard tasks and the
  // whole pool deadlocked once shards >= free workers. Shards now run
  // inline in that situation — and must produce the identical sample.
  Dataset d = test::Skewed(20000);
  ThreadPool pool(1);  // one worker: zero free workers inside the task

  ParallelInterchangeSampler::Options opt;
  opt.num_shards = 4;
  opt.base.max_passes = 1;
  SampleSet outside = ParallelInterchangeSampler(opt).Sample(d, 100);

  opt.pool = &pool;
  auto inside = pool.Submit(
      [&]() { return ParallelInterchangeSampler(opt).Sample(d, 100); });
  ASSERT_EQ(inside.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  SampleSet from_task = inside.get();
  EXPECT_EQ(from_task.ids, outside.ids);  // sharding is deterministic
}

TEST(ParallelSamplerTest, EdgeCases) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 1, 1), 50, 1);
  ParallelInterchangeSampler sampler;
  EXPECT_TRUE(sampler.Sample(d, 0).empty());
  EXPECT_EQ(sampler.Sample(d, 50).size(), 50u);
  EXPECT_EQ(sampler.Sample(d, 999).size(), 50u);
  // More shards than k.
  ParallelInterchangeSampler::Options opt;
  opt.num_shards = 64;
  EXPECT_EQ(ParallelInterchangeSampler(opt).Sample(d, 3).size(), 3u);
}

}  // namespace
}  // namespace vas
