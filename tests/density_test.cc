// Density embedding (paper §V): counts are a partition of the dataset by
// nearest sample point.
#include <gtest/gtest.h>

#include <numeric>

#include "core/density.h"
#include "core/interchange.h"
#include "data/generators.h"
#include "sampling/uniform_sampler.h"
#include "test_util.h"

namespace vas {
namespace {

using test::Skewed;

TEST(DensityTest, CountsSumToDatasetSize) {
  Dataset d = Skewed(5000);
  UniformReservoirSampler sampler(1);
  SampleSet s = sampler.Sample(d, 100);
  EmbedDensity(d, &s);
  ASSERT_EQ(s.density.size(), s.ids.size());
  uint64_t total = std::accumulate(s.density.begin(), s.density.end(),
                                   uint64_t{0});
  EXPECT_EQ(total, d.size());
}

TEST(DensityTest, NearestAssignmentMatchesBruteForce) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 5, 5), 800, 3);
  UniformReservoirSampler sampler(2);
  SampleSet s = sampler.Sample(d, 25);
  EmbedDensity(d, &s);

  std::vector<Point> sample_pts = s.MaterializePoints(d);
  std::vector<uint64_t> brute(s.size(), 0);
  for (const Point& p : d.points) {
    size_t best = 0;
    for (size_t i = 1; i < sample_pts.size(); ++i) {
      if (SquaredDistance(sample_pts[i], p) <
          SquaredDistance(sample_pts[best], p)) {
        best = i;
      }
    }
    ++brute[best];
  }
  EXPECT_EQ(s.density, brute);
}

TEST(DensityTest, DenseRegionsGetBigCounts) {
  // 90% of the mass in one tight clump: the sample point nearest the
  // clump must carry a dominant count.
  Dataset d;
  Rng rng(9);
  for (int i = 0; i < 9000; ++i) {
    d.Add({rng.Gaussian(1.0, 0.05), rng.Gaussian(1.0, 0.05)}, 0.0);
  }
  for (int i = 0; i < 1000; ++i) {
    d.Add({rng.Uniform(0, 10), rng.Uniform(0, 10)}, 0.0);
  }
  InterchangeSampler sampler;
  SampleSet s = sampler.Sample(d, 50);
  EmbedDensity(d, &s);
  uint64_t max_count = *std::max_element(s.density.begin(), s.density.end());
  EXPECT_GT(max_count, d.size() / 20);
}

TEST(DensityTest, SingleSamplePointTakesAll) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 1, 1), 100, 1);
  SampleSet s;
  s.ids = {42};
  EmbedDensity(d, &s);
  ASSERT_EQ(s.density.size(), 1u);
  EXPECT_EQ(s.density[0], 100u);
}

TEST(DensityTest, EmptySampleIsNoOp) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 1, 1), 10, 1);
  SampleSet s;
  EmbedDensity(d, &s);
  EXPECT_TRUE(s.density.empty());
}

TEST(DensityTest, WithDensityRenamesMethod) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 1, 1), 200, 1);
  UniformReservoirSampler sampler(1);
  SampleSet s = WithDensity(d, sampler.Sample(d, 10));
  EXPECT_EQ(s.method, "uniform+density");
  EXPECT_TRUE(s.has_density());
}

TEST(DensityTest, DensityWeightsMirrorEmbeddedCounts) {
  Dataset d = Skewed(1000);
  UniformReservoirSampler sampler(7);
  SampleSet plain = sampler.Sample(d, 40);
  EXPECT_TRUE(DensityWeights(plain).empty())
      << "no embedded density means weight 1 per point";
  SampleSet dense = WithDensity(d, plain);
  EXPECT_EQ(DensityWeights(dense), dense.density);
}

}  // namespace
}  // namespace vas
