// PlotService: the serving layer between HTTP and the engine. Covers
// registration paths (build / prebuilt / from file), tile rendering
// with cache hits sharing bytes, the acceptance-criterion contract
// that a served tile is byte-identical to the same rung rendered
// directly through ScatterRenderer, rung-upgrade invalidation
// (progressive refinement), time-budget rung selection, viewport
// queries against brute-force counts, and drop semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/density.h"
#include "engine/catalog_io.h"
#include "service/plot_service.h"
#include "sampling/uniform_sampler.h"
#include "test_util.h"

namespace vas {
namespace {

SamplerFactory UniformFactory(uint64_t seed) {
  return [seed]() { return std::make_unique<UniformReservoirSampler>(seed); };
}

SampleCatalog::Options Ladder(std::vector<size_t> rungs) {
  SampleCatalog::Options options;
  options.ladder = std::move(rungs);
  options.embed_density = false;
  return options;
}

std::shared_ptr<const Dataset> SkewedShared(size_t n) {
  auto dataset = std::make_shared<Dataset>(test::Skewed(n));
  dataset->CacheBounds();
  return dataset;
}

/// Blocks rungs of at least `gate_at_k` points until the shared future
/// resolves, making "the larger rung has not landed yet" deterministic.
class GatedSampler : public Sampler {
 public:
  GatedSampler(uint64_t seed, size_t gate_at_k, std::shared_future<void> gate)
      : inner_(seed), gate_at_k_(gate_at_k), gate_(std::move(gate)) {}

  SampleSet Sample(const Dataset& dataset, size_t k) override {
    if (k >= gate_at_k_) gate_.wait();
    return inner_.Sample(dataset, k);
  }
  std::string name() const override { return "gated-uniform"; }

 private:
  UniformReservoirSampler inner_;
  size_t gate_at_k_;
  std::shared_future<void> gate_;
};

TEST(PlotServiceTest, UnknownTableIsNotFound) {
  PlotService service;
  EXPECT_EQ(service.RenderTile("nope", TileKey{0, 0, 0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.DropTable("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(
      service.QueryViewport("nope", Rect(), 2.0).status().code(),
      StatusCode::kNotFound);
}

TEST(PlotServiceTest, TileKeyOutsideGridIsInvalidArgument) {
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable("geo", SkewedShared(2000), UniformFactory(3),
                                 Ladder({100}))
                  .ok());
  EXPECT_EQ(service.RenderTile("geo", TileKey{2, 4, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.RenderTile("geo", TileKey{TileGrid::kMaxZoom + 1, 0, 0})
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(PlotServiceTest, SecondFetchIsACacheHitSharingTheBytes) {
  PlotService service;
  auto dataset = SkewedShared(3000);
  ASSERT_TRUE(service
                  .RegisterTable("geo", dataset, UniformFactory(5),
                                 Ladder({200}))
                  .ok());
  auto first = service.RenderTile("geo", TileKey{1, 0, 1});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  ASSERT_NE(first->png, nullptr);
  EXPECT_FALSE(first->png->empty());
  EXPECT_EQ(first->png->substr(0, 8), std::string("\x89PNG\r\n\x1a\n", 8));

  auto second = service.RenderTile("geo", TileKey{1, 0, 1});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->png.get(), first->png.get())
      << "a hit must serve the cached bytes, not a copy";
  auto stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PlotServiceTest, ServedTileIsByteIdenticalToDirectRender) {
  // The acceptance-criterion contract in miniature: GridFor +
  // TileRenderOptions reproduce the served tile exactly through a
  // directly-driven ScatterRenderer.
  PlotService::Options options;
  options.tile_px = 128;
  PlotService service(options);
  auto dataset = SkewedShared(4000);
  ASSERT_TRUE(service
                  .RegisterTable("geo", dataset, UniformFactory(17),
                                 Ladder({300, 900}))
                  .ok());
  CatalogKey key{"geo", "x", "y"};
  ASSERT_TRUE(service.manager().WaitUntilDone(key).ok());

  TileKey tile{2, 1, 2};
  auto served = service.RenderTile("geo", tile);
  ASSERT_TRUE(served.ok());

  auto snapshot = service.manager().Snapshot(key);
  ASSERT_TRUE(snapshot.ok());
  const SampleSet& rung = (*snapshot)->ChooseForTimeBudget(
      service.options().tile_time_budget_seconds, service.options().viz_model);
  EXPECT_EQ(rung.size(), served->sample_size);

  auto grid = service.GridFor("geo");
  ASSERT_TRUE(grid.ok());
  Viewport viewport(grid->TileBounds(tile), options.tile_px, options.tile_px);
  ScatterRenderer renderer(service.TileRenderOptions());
  Image direct = renderer.RenderSample(*dataset, rung, viewport);
  EXPECT_EQ(direct.EncodePng(), *served->png);
}

TEST(PlotServiceTest, ConditionalRenderTileHonorsEtags) {
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable("geo", SkewedShared(3000), UniformFactory(5),
                                 Ladder({200}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());
  TileKey tile{1, 0, 1};
  auto cold = service.RenderTile("geo", tile);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->etag.empty());
  EXPECT_TRUE(cold->build_done);
  EXPECT_FALSE(cold->not_modified);

  // A matching If-None-Match answers from the tag alone: no bytes, no
  // render, not even a cache lookup.
  auto before = service.cache_stats();
  auto conditional = service.RenderTile("geo", tile, cold->etag);
  ASSERT_TRUE(conditional.ok());
  EXPECT_TRUE(conditional->not_modified);
  EXPECT_EQ(conditional->png, nullptr);
  EXPECT_EQ(conditional->etag, cold->etag);
  EXPECT_EQ(conditional->sample_size, cold->sample_size);
  auto after = service.cache_stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);

  // RFC 9110 weak comparison: W/ prefixes, lists, and "*" all match.
  EXPECT_TRUE(
      service.RenderTile("geo", tile, "W/" + cold->etag)->not_modified);
  EXPECT_TRUE(service.RenderTile("geo", tile, "\"zz\", " + cold->etag)
                  ->not_modified);
  EXPECT_TRUE(service.RenderTile("geo", tile, "*")->not_modified);

  // A stale tag serves the full bytes.
  auto stale = service.RenderTile("geo", tile, "\"stale\"");
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->not_modified);
  ASSERT_NE(stale->png, nullptr);

  // Tags are per tile: a different key has a different tag.
  auto other = service.RenderTile("geo", TileKey{1, 1, 1});
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other->etag, cold->etag);
}

TEST(PlotServiceTest, EtagRotatesWhenASharperRungLands) {
  // The progressive-refinement contract behind the short max-age: while
  // the ladder builds, a client revalidating with its old tag gets the
  // sharper tile the moment the served rung advances.
  std::promise<void> gate;
  std::shared_future<void> future = gate.get_future().share();
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable(
                      "geo", SkewedShared(5000),
                      [future]() {
                        return std::make_unique<GatedSampler>(9, 2000, future);
                      },
                      Ladder({200, 2000}))
                  .ok());

  auto early = service.RenderTile("geo", TileKey{0, 0, 0});
  ASSERT_TRUE(early.ok());
  EXPECT_FALSE(early->build_done);
  // Nothing changed yet — revalidation is still a cheap 304.
  EXPECT_TRUE(
      service.RenderTile("geo", TileKey{0, 0, 0}, early->etag)->not_modified);

  gate.set_value();
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());

  // The old tag no longer matches: the conditional fetch returns the
  // sharper tile, under a new tag, now marked stable.
  auto upgraded = service.RenderTile("geo", TileKey{0, 0, 0}, early->etag);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_FALSE(upgraded->not_modified);
  ASSERT_NE(upgraded->png, nullptr);
  EXPECT_EQ(upgraded->sample_size, 2000u);
  EXPECT_NE(upgraded->etag, early->etag);
  EXPECT_TRUE(upgraded->build_done);
}

TEST(PlotServiceTest, RungUpgradeInvalidatesCachedTiles) {
  std::promise<void> gate;
  std::shared_future<void> future = gate.get_future().share();
  PlotService service;
  auto dataset = SkewedShared(5000);
  ASSERT_TRUE(service
                  .RegisterTable(
                      "geo", dataset,
                      [future]() {
                        return std::make_unique<GatedSampler>(9, 2000, future);
                      },
                      Ladder({200, 2000}))
                  .ok());

  // Rung 1 only: the tile serves and caches at sample_size 200.
  auto early = service.RenderTile("geo", TileKey{0, 0, 0});
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->sample_size, 200u);
  EXPECT_LT(early->rungs_ready, early->rungs_total);
  ASSERT_TRUE(service.RenderTile("geo", TileKey{0, 0, 0})->cache_hit);

  gate.set_value();
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());

  // The sharper rung must now serve — freshly rendered, not the stale
  // cached tile (rung size is part of the cache key, and the upgrade
  // hook swept the table's namespace).
  auto sharper = service.RenderTile("geo", TileKey{0, 0, 0});
  ASSERT_TRUE(sharper.ok());
  EXPECT_EQ(sharper->sample_size, 2000u);
  EXPECT_FALSE(sharper->cache_hit);
  EXPECT_EQ(sharper->rungs_ready, sharper->rungs_total);
  // The upgrade hook fires from the build worker after publication, so
  // it may land shortly after WaitUntilDone returns.
  for (int i = 0; i < 500 && service.cache_stats().invalidated == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(service.cache_stats().invalidated, 1u);
}

TEST(PlotServiceTest, TileTimeBudgetPicksTheRung) {
  // MathGL model: 0.2 s overhead + 2 µs/point. A 0.205 s budget fits
  // the 200-point rung (0.2004 s) but not 5000 points (0.21 s).
  PlotService::Options options;
  options.tile_time_budget_seconds = 0.205;
  PlotService service(options);
  ASSERT_TRUE(service
                  .RegisterTable("geo", SkewedShared(20000),
                                 UniformFactory(23), Ladder({200, 5000}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());
  auto tile = service.RenderTile("geo", TileKey{0, 0, 0});
  ASSERT_TRUE(tile.ok());
  EXPECT_EQ(tile->sample_size, 200u);
}

TEST(PlotServiceTest, AddAndLoadTableServePrebuiltLadders) {
  auto dataset = SkewedShared(3000);
  UniformReservoirSampler sampler(31);
  SampleCatalog catalog(*dataset, sampler, Ladder({150, 600}));

  PlotService service;
  ASSERT_TRUE(service.AddTable("mem", dataset, catalog).ok());
  auto tile = service.RenderTile("mem", TileKey{0, 0, 0});
  ASSERT_TRUE(tile.ok());
  EXPECT_EQ(tile->rungs_ready, 2u);

  test::ScopedTempFile file("plot_service_test.vascat");
  ASSERT_TRUE(WriteCatalog(catalog, file.path()).ok());
  ASSERT_TRUE(service.LoadTable("disk", dataset, file.path()).ok());
  auto loaded = service.RenderTile("disk", TileKey{0, 0, 0});
  ASSERT_TRUE(loaded.ok());
  // Same ladder, same renderer, same tile: identical bytes.
  EXPECT_EQ(*loaded->png, *tile->png);

  ASSERT_EQ(service.Tables().size(), 2u);
  EXPECT_EQ(service.Tables()[0].key.table, "disk");
  EXPECT_EQ(service.Tables()[1].key.table, "mem");
}

TEST(PlotServiceTest, ViewportQueryCountsMatchBruteForce) {
  PlotService service;
  auto dataset = SkewedShared(8000);
  ASSERT_TRUE(service
                  .RegisterTable("geo", dataset, UniformFactory(41),
                                 Ladder({500}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());

  Rect bounds = dataset->Bounds();
  Rect viewport = Rect::Of(bounds.min_x + bounds.width() * 0.2,
                           bounds.min_y + bounds.height() * 0.3,
                           bounds.min_x + bounds.width() * 0.7,
                           bounds.min_y + bounds.height() * 0.8);
  size_t brute = 0;
  for (const Point& p : dataset->points) {
    if (viewport.Contains(p)) ++brute;
  }
  auto info = service.QueryViewport("geo", viewport, 2.0);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->points_in_viewport, brute);
  EXPECT_EQ(info->sample_size, 500u);
  EXPECT_LE(info->sample_points_in_viewport, info->sample_size);
  EXPECT_GT(info->estimated_full_viz_seconds, info->estimated_viz_seconds);
}

TEST(PlotServiceTest, ConcurrentColdFetchesOfOneTileShareOneRender) {
  // Single-flight: simultaneous misses on the same uncached tile must
  // resolve to the very same bytes object — one render, shared by the
  // leader, the coalesced waiters, and the cache.
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable("geo", SkewedShared(6000), UniformFactory(2),
                                 Ladder({3000}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());

  constexpr size_t kThreads = 8;
  std::vector<std::shared_ptr<const std::string>> pngs(kThreads);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto tile = service.RenderTile("geo", TileKey{3, 4, 4});
      if (!tile.ok() || tile->png == nullptr) {
        failed = true;
        return;
      }
      pngs[t] = tile->png;
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(pngs[t].get(), pngs[0].get())
        << "thread " << t << " got a redundantly rendered copy";
  }
}

TEST(PlotServiceTest, ReRegisteredTableNeverServesTheOldDatasetsTiles) {
  // Same table name, same rung size, different dataset: the tile must
  // be re-rendered from the new data (per-registration generation in
  // the cache key), never served from the old registration's cache.
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable("t", SkewedShared(3000), UniformFactory(4),
                                 Ladder({500}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"t"}).ok());
  auto old_tile = service.RenderTile("t", TileKey{1, 0, 0});
  ASSERT_TRUE(old_tile.ok());

  ASSERT_TRUE(service.DropTable("t").ok());
  auto other = std::make_shared<Dataset>(test::Skewed(3000, /*seed=*/99));
  other->CacheBounds();
  ASSERT_TRUE(service
                  .RegisterTable("t", other, UniformFactory(4), Ladder({500}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"t"}).ok());
  auto new_tile = service.RenderTile("t", TileKey{1, 0, 0});
  ASSERT_TRUE(new_tile.ok());
  EXPECT_FALSE(new_tile->cache_hit);
  EXPECT_NE(*new_tile->png, *old_tile->png)
      << "re-registered table served a tile of the dropped dataset";
}

TEST(PlotServiceTest, DropTableForgetsStateAndAllowsReRegistration) {
  PlotService service;
  auto dataset = SkewedShared(2000);
  ASSERT_TRUE(service
                  .RegisterTable("geo", dataset, UniformFactory(7),
                                 Ladder({100}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());
  ASSERT_TRUE(service.RenderTile("geo", TileKey{0, 0, 0}).ok());
  ASSERT_GE(service.cache_stats().entries, 1u);

  ASSERT_TRUE(service.DropTable("geo").ok());
  EXPECT_EQ(service.RenderTile("geo", TileKey{0, 0, 0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.cache_stats().entries, 0u)
      << "dropping a table must drop its cached tiles";
  EXPECT_TRUE(service.Tables().empty());

  ASSERT_TRUE(service
                  .RegisterTable("geo", dataset, UniformFactory(8),
                                 Ladder({100}))
                  .ok());
  EXPECT_TRUE(service.RenderTile("geo", TileKey{0, 0, 0}).ok());
}

TEST(PlotServiceTest, DropWhileBuildingIsFailedPrecondition) {
  std::promise<void> gate;
  std::shared_future<void> future = gate.get_future().share();
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable(
                      "geo", SkewedShared(3000),
                      [future]() {
                        return std::make_unique<GatedSampler>(2, 1000, future);
                      },
                      Ladder({100, 1000}))
                  .ok());
  ASSERT_TRUE(service.RenderTile("geo", TileKey{0, 0, 0}).ok());
  EXPECT_EQ(service.DropTable("geo").code(),
            StatusCode::kFailedPrecondition);
  gate.set_value();
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());
  EXPECT_TRUE(service.DropTable("geo").ok());
}

TEST(TileStyleTest, NamesAndParsingRoundTrip) {
  EXPECT_STREQ(TileStyleName(TileStyle::kScatter), "scatter");
  EXPECT_STREQ(TileStyleName(TileStyle::kHeatmap), "heatmap");
  EXPECT_EQ(*ParseTileStyle(""), TileStyle::kScatter)
      << "no ?style= means the default";
  EXPECT_EQ(*ParseTileStyle("scatter"), TileStyle::kScatter);
  EXPECT_EQ(*ParseTileStyle("heatmap"), TileStyle::kHeatmap);
  EXPECT_EQ(ParseTileStyle("sepia").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTileStyle("Heatmap").status().code(),
            StatusCode::kInvalidArgument)
      << "style names are exact, not case-folded";
}

TEST(PlotServiceTest, HeatmapStyleIsADistinctCachedResource) {
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable("geo", SkewedShared(3000), UniformFactory(5),
                                 Ladder({400}))
                  .ok());
  TileKey tile{0, 0, 0};
  auto scatter = service.RenderTile("geo", tile);
  auto heatmap = service.RenderTile("geo", tile, "", TileStyle::kHeatmap);
  ASSERT_TRUE(scatter.ok());
  ASSERT_TRUE(heatmap.ok());
  EXPECT_FALSE(scatter->cache_hit);
  EXPECT_FALSE(heatmap->cache_hit)
      << "the styles must not collide on one cache entry";
  EXPECT_NE(scatter->etag, heatmap->etag);
  ASSERT_NE(heatmap->png, nullptr);
  EXPECT_EQ(heatmap->png->substr(0, 8), std::string("\x89PNG\r\n\x1a\n", 8));
  EXPECT_NE(*heatmap->png, *scatter->png);

  // Each style warms its own entry.
  EXPECT_TRUE(service.RenderTile("geo", tile)->cache_hit);
  EXPECT_TRUE(
      service.RenderTile("geo", tile, "", TileStyle::kHeatmap)->cache_hit);

  // Conditional requests are per style: the scatter tag can never 304
  // the heatmap resource.
  EXPECT_TRUE(service.RenderTile("geo", tile, heatmap->etag,
                                 TileStyle::kHeatmap)
                  ->not_modified);
  EXPECT_FALSE(service.RenderTile("geo", tile, scatter->etag,
                                  TileStyle::kHeatmap)
                   ->not_modified);
}

TEST(PlotServiceTest, HeatmapTileMatchesDirectDensityRender) {
  // The byte-identity contract for the heatmap style: RenderCounts with
  // the rung's density weights, colormapped by RenderDensityImage and
  // encoded with the service's PNG options, reproduces the served tile
  // exactly.
  PlotService::Options options;
  options.tile_px = 64;
  PlotService service(options);
  auto dataset = SkewedShared(4000);
  SampleCatalog::Options ladder = Ladder({300});
  ladder.embed_density = true;  // weights flow into the counts
  ASSERT_TRUE(
      service.RegisterTable("geo", dataset, UniformFactory(9), ladder).ok());
  CatalogKey key{"geo", "x", "y"};
  ASSERT_TRUE(service.manager().WaitUntilDone(key).ok());

  TileKey tile{1, 0, 0};
  auto served = service.RenderTile("geo", tile, "", TileStyle::kHeatmap);
  ASSERT_TRUE(served.ok());

  auto snapshot = service.manager().Snapshot(key);
  ASSERT_TRUE(snapshot.ok());
  const SampleSet& rung = (*snapshot)->ChooseForTimeBudget(
      service.options().tile_time_budget_seconds, service.options().viz_model);
  ASSERT_TRUE(rung.has_density());

  auto grid = service.GridFor("geo");
  ASSERT_TRUE(grid.ok());
  Viewport viewport(grid->TileBounds(tile), options.tile_px, options.tile_px);
  ScatterRenderer renderer(service.TileRenderOptions());
  std::vector<uint32_t> counts = renderer.RenderCounts(
      rung.MaterializePoints(*dataset), DensityWeights(rung), viewport);
  Image direct =
      RenderDensityImage(counts, options.tile_px, options.tile_px,
                         service.options().heatmap_colormap,
                         service.options().renderer.background);
  EXPECT_EQ(direct.EncodePng(service.options().png), *served->png);
}

TEST(PlotServiceTest, RenderStatsCountColdRendersPerStyle) {
  PlotService service;
  ASSERT_TRUE(service
                  .RegisterTable("geo", SkewedShared(2000), UniformFactory(3),
                                 Ladder({200}))
                  .ok());
  auto zero = service.render_stats();
  EXPECT_EQ(zero.tiles_rendered, 0u);
  EXPECT_EQ(zero.encode_bytes_out, 0u);

  TileKey tile{0, 0, 0};
  auto scatter = service.RenderTile("geo", tile);
  auto heatmap = service.RenderTile("geo", tile, "", TileStyle::kHeatmap);
  ASSERT_TRUE(scatter.ok());
  ASSERT_TRUE(heatmap.ok());
  // Neither a cache hit nor a 304 is a render.
  ASSERT_TRUE(service.RenderTile("geo", tile)->cache_hit);
  ASSERT_TRUE(service.RenderTile("geo", tile, scatter->etag)->not_modified);

  auto stats = service.render_stats();
  EXPECT_EQ(stats.tiles_rendered, 2u);
  EXPECT_EQ(stats.scatter_tiles_rendered, 1u);
  EXPECT_EQ(stats.heatmap_tiles_rendered, 1u);
  size_t px = service.options().tile_px;
  EXPECT_EQ(stats.encode_bytes_in, 2u * px * px * 3u);
  EXPECT_EQ(stats.encode_bytes_out,
            scatter->png->size() + heatmap->png->size());
  EXPECT_GT(stats.render_nanos, 0u);
  EXPECT_GT(stats.encode_nanos, 0u);
}

TEST(PlotServiceTest, SpilledMillionPointTableServesIdenticalTilesPartially) {
  // The acceptance criterion for the paged catalog store: a table
  // whose ladder was evicted to its CAT2 spill file serves tiles
  // byte-identical to the fully-resident path, while the mmap'd
  // backing faults in strictly fewer bytes than a full
  // materialization would read.
  constexpr size_t kMillion = 1000000;
  auto dataset = SkewedShared(kMillion);
  ASSERT_GE(dataset->size(), kMillion);
  UniformReservoirSampler sampler(77);
  SampleCatalog catalog(*dataset, sampler, Ladder({20000}));

  PlotService resident;  // unlimited memory: the baseline pixels
  ASSERT_TRUE(resident.AddTable("geo", dataset, catalog).ok());

  PlotService::Options tight;
  tight.catalog.memory_budget_bytes = 1;  // evict everything not in use
  PlotService spilled(tight);
  ASSERT_TRUE(spilled.AddTable("geo", dataset, catalog).ok());
  // Eviction spares the entry being accessed, so a second table's
  // registration is what pushes "geo" out; the spill write itself runs
  // off-lock — wait until the ladder is provably out of memory.
  auto tiny_dataset = SkewedShared(2000);
  UniformReservoirSampler tiny_sampler(78);
  SampleCatalog tiny_catalog(*tiny_dataset, tiny_sampler, Ladder({100}));
  ASSERT_TRUE(spilled.AddTable("tiny", tiny_dataset, tiny_catalog).ok());
  CatalogKey key{"geo", "x", "y"};
  for (int i = 0; i < 500; ++i) {
    auto status = spilled.manager().GetStatus(key);
    ASSERT_TRUE(status.ok());
    if (!status->resident) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(spilled.manager().GetStatus(key)->resident);

  // A deep-zoom tile and both styles: the spilled service must render
  // the very same bytes. The heatmap comes from a cell-range partial
  // load; the scatter tile is value-colored (Skewed data has values),
  // so pixel identity demands the whole rung and the service must NOT
  // count it as a partial load.
  TileKey tile{3, 4, 3};
  for (TileStyle style : {TileStyle::kScatter, TileStyle::kHeatmap}) {
    auto baseline = resident.RenderTile("geo", tile, "", style);
    auto partial = spilled.RenderTile("geo", tile, "", style);
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(partial.ok());
    EXPECT_EQ(baseline->sample_size, 20000u);
    EXPECT_EQ(partial->sample_size, 20000u);
    EXPECT_EQ(*partial->png, *baseline->png)
        << "spilled tile diverged from the resident render";
  }
  EXPECT_EQ(spilled.render_stats().partial_tile_loads, 1u);
  EXPECT_EQ(resident.render_stats().partial_tile_loads, 0u);

  // The resident-byte accounting proves the partial load: the mapped
  // store faulted in some pages, but strictly fewer than the whole
  // file a full materialization reads.
  auto stats = spilled.manager().memory_stats();
  EXPECT_GT(stats.mapped_bytes, 0u);
  EXPECT_GT(stats.touched_page_bytes, 0u);
  EXPECT_LT(stats.touched_page_bytes, stats.mapped_bytes);
  // The tiles really came from the mapping, not a transparent reload.
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_FALSE(spilled.manager().GetStatus(key)->resident);
}

TEST(PlotServiceTest, GetTableReportsWorldAndBuildState) {
  PlotService service;
  auto dataset = SkewedShared(2500);
  ASSERT_TRUE(service
                  .RegisterTable("geo", dataset, UniformFactory(13),
                                 Ladder({100, 400}))
                  .ok());
  ASSERT_TRUE(service.manager().WaitUntilDone(CatalogKey{"geo"}).ok());
  auto info = service.GetTable("geo");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->rows, 2500u);
  EXPECT_EQ(info->key.table, "geo");
  EXPECT_EQ(info->world, TileGrid(dataset->Bounds()).world());
  EXPECT_TRUE(info->build.done);
  EXPECT_EQ(info->build.rungs_total, 2u);
}

}  // namespace
}  // namespace vas
