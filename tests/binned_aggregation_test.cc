// Binned-aggregation baseline: pyramid consistency, level selection,
// and the zoom-fidelity limitation the paper criticizes.
#include <gtest/gtest.h>

#include <numeric>

#include "data/generators.h"
#include "render/binned_aggregation.h"

namespace vas {
namespace {

BinnedPyramid::Options Levels(size_t max_level) {
  BinnedPyramid::Options opt;
  opt.max_level = max_level;
  return opt;
}

TEST(BinnedPyramidTest, EveryLevelSumsToDatasetSize) {
  Dataset d = GeolifeLikeGenerator({}).Generate();
  BinnedPyramid pyramid(d, Levels(6));
  ASSERT_EQ(pyramid.num_levels(), 7u);
  for (size_t l = 0; l < pyramid.num_levels(); ++l) {
    uint64_t total = std::accumulate(pyramid.level(l).counts.begin(),
                                     pyramid.level(l).counts.end(),
                                     uint64_t{0});
    EXPECT_EQ(total, d.size()) << "level " << l;
  }
}

TEST(BinnedPyramidTest, RollupPreservesValueSums) {
  Dataset d = GeolifeLikeGenerator({}).Generate();
  BinnedPyramid pyramid(d, Levels(5));
  double want = std::accumulate(d.values.begin(), d.values.end(), 0.0);
  for (size_t l = 0; l < pyramid.num_levels(); ++l) {
    double got = std::accumulate(pyramid.level(l).value_sums.begin(),
                                 pyramid.level(l).value_sums.end(), 0.0);
    EXPECT_NEAR(got, want, std::abs(want) * 1e-9) << "level " << l;
  }
}

TEST(BinnedPyramidTest, LevelZeroIsOneCell) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 1, 1), 100, 1);
  BinnedPyramid pyramid(d, Levels(4));
  EXPECT_EQ(pyramid.level(0).cells_per_axis, 1u);
  EXPECT_EQ(pyramid.level(0).counts[0], 100u);
  EXPECT_EQ(pyramid.level(4).cells_per_axis, 16u);
}

TEST(BinnedPyramidTest, CountAtLevelMatchesBruteForceOnCellAligned) {
  // Queries aligned to cell boundaries are exact. Pin the domain with
  // exact corner tuples so cells are exactly 1x1.
  Dataset d = GenerateUniform(Rect::Of(0, 0, 8, 8), 5000, 2);
  d.Add({0.0, 0.0}, 0.0);
  d.Add({8.0, 8.0}, 0.0);
  BinnedPyramid pyramid(d, Levels(3));  // 8x8 cells of size 1x1
  Rect q = Rect::Of(2.0, 2.0, 4.0 - 1e-9, 6.0 - 1e-9);
  uint64_t got = pyramid.CountAtLevel(q, 3);
  uint64_t want = 0;
  for (Point p : d.points) {
    if (p.x >= 2.0 && p.x < 4.0 && p.y >= 2.0 && p.y < 6.0) ++want;
  }
  EXPECT_EQ(got, want);
}

TEST(BinnedPyramidTest, MisalignedQueriesOvercount) {
  // The inherent bin-edge error: a query clipping a cell counts the
  // whole cell.
  Dataset d = GenerateUniform(Rect::Of(0, 0, 8, 8), 20000, 3);
  BinnedPyramid pyramid(d, Levels(3));
  Rect q = Rect::Of(1.5, 1.5, 2.5, 2.5);  // straddles 4 cells
  uint64_t approx = pyramid.ApproxCount(q);
  uint64_t exact = 0;
  for (Point p : d.points) {
    if (q.Contains(p)) ++exact;
  }
  EXPECT_GT(approx, exact);       // counts 4 cells' worth
  EXPECT_LE(approx, exact * 6);   // but not absurdly more
}

TEST(BinnedPyramidTest, LevelForViewportPicksFinerOnZoom) {
  Dataset d = GeolifeLikeGenerator({}).Generate();
  BinnedPyramid pyramid(d, Levels(10));
  Rect full = pyramid.domain();
  size_t overview_level = pyramid.LevelForViewport(full, 256);
  Rect tight = Rect::Of(full.min_x, full.min_y,
                        full.min_x + full.width() / 64,
                        full.min_y + full.height() / 64);
  size_t zoom_level = pyramid.LevelForViewport(tight, 256);
  EXPECT_GT(zoom_level, overview_level);
}

TEST(BinnedPyramidTest, DeepZoomExhaustsPyramid) {
  // The paper's criticism, quantified: once the viewport needs cells
  // finer than the pre-chosen max level, resolution stops improving.
  Dataset d = GeolifeLikeGenerator({}).Generate();
  BinnedPyramid pyramid(d, Levels(6));  // 64x64 finest
  Rect full = pyramid.domain();
  Rect micro = Rect::Of(full.min_x, full.min_y,
                        full.min_x + full.width() / 1024,
                        full.min_y + full.height() / 1024);
  EXPECT_EQ(pyramid.LevelForViewport(micro, 512),
            pyramid.num_levels() - 1);  // stuck at the finest level
}

TEST(BinnedPyramidTest, RenderProducesInkAndReportsLevel) {
  Dataset d = GeolifeLikeGenerator({}).Generate();
  BinnedPyramid pyramid(d, Levels(7));
  size_t used_level = 999;
  Image img = pyramid.Render(pyramid.domain(), 128, 128, &used_level);
  EXPECT_LT(used_level, pyramid.num_levels());
  EXPECT_GT(img.InkFraction({255, 255, 255}), 0.01);
}

TEST(BinnedPyramidTest, StorageGrowsGeometrically) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 1, 1), 100, 4);
  size_t prev = 0;
  for (size_t ml : {2u, 4u, 6u}) {
    BinnedPyramid pyramid(d, Levels(ml));
    EXPECT_GT(pyramid.TotalCells(), prev);
    prev = pyramid.TotalCells();
  }
  // 4^l growth: level-6 pyramid holds 1+4+...+4096 = 5461 cells.
  BinnedPyramid pyramid(d, Levels(6));
  EXPECT_EQ(pyramid.TotalCells(), 5461u);
}

}  // namespace
}  // namespace vas
