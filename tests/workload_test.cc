// Workload log and index advisor (paper §II-D).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "engine/workload.h"

namespace vas {
namespace {

VisualizationQuery Q(const std::string& x, const std::string& y) {
  VisualizationQuery q;
  q.x_column = x;
  q.y_column = y;
  return q;
}

TEST(WorkloadLogTest, RecordsQueries) {
  WorkloadLog log;
  EXPECT_EQ(log.size(), 0u);
  log.Record(Q("lat", "lon"));
  log.Record(Q("time", "latency"));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.queries()[0].x_column, "lat");
}

TEST(IndexAdvisorTest, RanksByFrequency) {
  WorkloadLog log;
  for (int i = 0; i < 8; ++i) log.Record(Q("lat", "lon"));
  for (int i = 0; i < 3; ++i) log.Record(Q("time", "latency"));
  log.Record(Q("a", "b"));
  auto ranked = IndexAdvisor::RankPairs(log);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].x_column, "lat");
  EXPECT_EQ(ranked[0].frequency, 8u);
  EXPECT_NEAR(ranked[0].cumulative_coverage, 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(ranked[2].cumulative_coverage, 1.0, 1e-12);
}

TEST(IndexAdvisorTest, PairIdentityIsUnordered) {
  WorkloadLog log;
  log.Record(Q("x", "y"));
  log.Record(Q("y", "x"));  // transposed plot, same sample
  auto ranked = IndexAdvisor::RankPairs(log);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].frequency, 2u);
}

TEST(IndexAdvisorTest, RecommendCoversTarget) {
  // The paper's trace shape: a few pairs dominate. 80% coverage should
  // need only the heavy hitters.
  WorkloadLog log;
  for (int i = 0; i < 60; ++i) log.Record(Q("lat", "lon"));
  for (int i = 0; i < 25; ++i) log.Record(Q("time", "cpu"));
  for (int i = 0; i < 10; ++i) log.Record(Q("a", "b"));
  for (int i = 0; i < 5; ++i) log.Record(Q("c", "d"));
  auto recs = IndexAdvisor::Recommend(log, 0.8);
  ASSERT_EQ(recs.size(), 2u);  // 60 + 25 = 85% >= 80%
  EXPECT_GE(recs.back().cumulative_coverage, 0.8);
  auto all = IndexAdvisor::Recommend(log, 1.0);
  EXPECT_EQ(all.size(), 4u);
}

TEST(IndexAdvisorTest, EmptyLog) {
  WorkloadLog log;
  EXPECT_TRUE(IndexAdvisor::RankPairs(log).empty());
  EXPECT_TRUE(IndexAdvisor::Recommend(log, 0.9).empty());
}

TEST(WorkloadLogTest, CsvRoundTrip) {
  WorkloadLog log;
  VisualizationQuery q = Q("lat", "lon");
  q.viewport = Rect::Of(1.5, -2.0, 3.25, 4.0);
  q.time_budget_seconds = 0.5;
  log.Record(q);
  log.Record(Q("a", "b"));
  std::string path =
      std::filesystem::temp_directory_path() / "vas_workload_test.csv";
  ASSERT_TRUE(log.SaveCsv(path).ok());
  auto loaded = WorkloadLog::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->queries()[0].x_column, "lat");
  EXPECT_EQ(loaded->queries()[0].viewport, Rect::Of(1.5, -2.0, 3.25, 4.0));
  EXPECT_DOUBLE_EQ(loaded->queries()[0].time_budget_seconds, 0.5);
  std::filesystem::remove(path);
}

TEST(WorkloadLogTest, LoadRejectsMalformed) {
  std::string path =
      std::filesystem::temp_directory_path() / "vas_workload_bad.csv";
  {
    std::ofstream out(path);
    out << "x,y,min_x,min_y,max_x,max_y,budget\nonly,three,fields\n";
  }
  EXPECT_FALSE(WorkloadLog::LoadCsv(path).ok());
  std::filesystem::remove(path);
  EXPECT_EQ(WorkloadLog::LoadCsv("/no/such/file.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace vas
