// FlagSet: the full grammar the bench/tool binaries rely on —
// --name=value, --name value, bare booleans, positionals, --help, and
// the typed accessors. Complements the smoke tests in util_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/flags.h"

namespace vas {
namespace {

// Builds a mutable argv from string literals (Parse takes char**).
class ArgvFixture {
 public:
  explicit ArgvFixture(std::vector<std::string> args) : args_(std::move(args)) {
    for (auto& a : args_) argv_.push_back(a.data());
  }
  int argc() { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> argv_;
};

TEST(FlagSetTest, TypedAccessorsParseDefinedFlags) {
  FlagSet flags;
  flags.Define("n", "1000", "point count");
  flags.Define("rate", "0.5", "sampling rate");
  flags.Define("quick", "false", "fast mode");
  flags.Define("name", "geolife", "dataset name");
  ArgvFixture args({"prog", "--n=42", "--rate", "2.25", "--quick=yes"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("n"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 2.25);
  EXPECT_TRUE(flags.GetBool("quick"));
  EXPECT_EQ(flags.GetString("name"), "geolife");  // untouched default
}

TEST(FlagSetTest, BareBooleanMeansTrue) {
  FlagSet flags;
  flags.Define("quick", "false", "fast mode");
  flags.Define("out", "", "output path");
  ArgvFixture args({"prog", "--quick", "--out=/tmp/x"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.GetBool("quick"));
  EXPECT_EQ(flags.GetString("out"), "/tmp/x");
}

TEST(FlagSetTest, BareBooleanAtEndOfLine) {
  FlagSet flags;
  flags.Define("quick", "false", "fast mode");
  ArgvFixture args({"prog", "--quick"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.GetBool("quick"));
}

TEST(FlagSetTest, BooleanSpellings) {
  FlagSet flags;
  flags.Define("a", "false", "");
  flags.Define("b", "false", "");
  flags.Define("c", "true", "");
  ArgvFixture args({"prog", "--a=1", "--b=yes", "--c=no"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_TRUE(flags.GetBool("b"));
  EXPECT_FALSE(flags.GetBool("c"));
}

TEST(FlagSetTest, MissingValueIsError) {
  FlagSet flags;
  flags.Define("out", "", "output path");  // non-boolean default
  ArgvFixture args({"prog", "--out"});
  Status s = flags.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagSetTest, UnknownFlagIsErrorInBothForms) {
  FlagSet flags;
  flags.Define("n", "10", "");
  {
    ArgvFixture args({"prog", "--typo=3"});
    EXPECT_EQ(flags.Parse(args.argc(), args.argv()).code(),
              StatusCode::kInvalidArgument);
  }
  {
    ArgvFixture args({"prog", "--typo", "3"});
    EXPECT_EQ(flags.Parse(args.argc(), args.argv()).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(FlagSetTest, PositionalsPreserveOrder) {
  FlagSet flags;
  flags.Define("k", "5", "");
  ArgvFixture args({"prog", "first", "--k=9", "second", "third"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_EQ(flags.GetInt("k"), 9);
}

TEST(FlagSetTest, HelpIsAlwaysAccepted) {
  FlagSet flags;  // no flags defined at all
  ArgvFixture args({"prog", "--help"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.help_requested());
}

TEST(FlagSetTest, UsageListsEveryFlagWithDefaultAndHelp) {
  FlagSet flags;
  flags.Define("n", "1000", "number of points");
  flags.Define("out", "", "output path");
  std::string usage = flags.Usage("vas_tool");
  EXPECT_NE(usage.find("vas_tool"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("1000"), std::string::npos);
  EXPECT_NE(usage.find("number of points"), std::string::npos);
  EXPECT_NE(usage.find("--out"), std::string::npos);
  EXPECT_NE(usage.find("\"\""), std::string::npos);  // empty default marker
}

TEST(FlagSetTest, EqualsSignInValueIsPreserved) {
  FlagSet flags;
  flags.Define("expr", "", "filter expression");
  ArgvFixture args({"prog", "--expr=a=b=c"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetString("expr"), "a=b=c");
}

}  // namespace
}  // namespace vas
