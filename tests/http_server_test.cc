// HttpServer + the route table: target/URI parsing, JSON escaping,
// real-socket request/response round trips on an ephemeral port,
// method handling (GET/HEAD/405), concurrent clients, and the whole
// service surface (/healthz, /catalogs, /status, /tiles, /plot)
// end-to-end through MakeServiceHandler over a PlotService.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/http_routes.h"
#include "service/http_server.h"
#include "service/plot_service.h"
#include "sampling/uniform_sampler.h"
#include "test_util.h"

namespace vas {
namespace {

TEST(HttpParseTest, UriDecode) {
  EXPECT_EQ(UriDecode("plain"), "plain");
  EXPECT_EQ(UriDecode("a%20b"), "a b");
  EXPECT_EQ(UriDecode("%2Fpath%2f"), "/path/");
  EXPECT_EQ(UriDecode("a+b"), "a+b") << "'+' is literal, not a space";
  // Malformed escapes pass through untouched.
  EXPECT_EQ(UriDecode("100%"), "100%");
  EXPECT_EQ(UriDecode("%zz"), "%zz");
  EXPECT_EQ(UriDecode("%4"), "%4");
}

TEST(HttpParseTest, ParseTargetSplitsPathAndQuery) {
  std::string path;
  std::map<std::string, std::string> query;
  ParseTarget("/plot?table=geo&xmin=-1.5&label=a%20b&flag", &path, &query);
  EXPECT_EQ(path, "/plot");
  EXPECT_EQ(query.size(), 4u);
  EXPECT_EQ(query["table"], "geo");
  EXPECT_EQ(query["xmin"], "-1.5");
  EXPECT_EQ(query["label"], "a b");
  EXPECT_EQ(query["flag"], "");

  ParseTarget("/tiles/t%20x/1/0/0.png", &path, &query);
  EXPECT_EQ(path, "/tiles/t x/1/0/0.png");
  EXPECT_TRUE(query.empty());

  ParseTarget("/bare", &path, &query);
  EXPECT_EQ(path, "/bare");
  EXPECT_TRUE(query.empty());
}

TEST(HttpParseTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

HttpServer::Options EphemeralPort(size_t threads = 4) {
  HttpServer::Options options;
  options.port = 0;  // the OS picks; tests never collide on a port
  options.bind_address = "127.0.0.1";
  options.num_threads = threads;
  return options;
}

TEST(HttpServerTest, ServesHandlerResponses) {
  HttpServer server(EphemeralPort(), [](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = request.method + " " + request.path;
    if (auto it = request.query.find("q"); it != request.query.end()) {
      response.body += " q=" + it->second;
    }
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto result = HttpGet(server.port(), "/echo?q=hi%21");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "GET /echo q=hi!");
  EXPECT_EQ(result->headers["content-type"], "text/plain");
  EXPECT_EQ(result->headers["content-length"],
            std::to_string(result->body.size()));
  EXPECT_EQ(result->headers["connection"], "close");
  server.Stop();
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServerTest, SharedBodyAndExtraHeadersReachTheWire) {
  auto bytes = std::make_shared<const std::string>("shared-tile-bytes");
  HttpServer server(EphemeralPort(), [bytes](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "image/png";
    response.shared_body = bytes;
    response.extra_headers.emplace_back("X-Vas-Cache", "hit");
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto result = HttpGet(server.port(), "/tile");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->body, *bytes);
  EXPECT_EQ(result->headers["x-vas-cache"], "hit");
}

TEST(HttpServerTest, RejectsNonGetMethodsAndMalformedRequests) {
  HttpServer server(EphemeralPort(), [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());

  // Raw socket: POST -> 405, garbage -> 400, HEAD -> headers only.
  auto raw_request = [&server](const std::string& wire) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    std::string out;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
      out.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  };

  // Transport-level errors close the connection, so reading to EOF
  // returns promptly; the well-formed HEAD asks for close explicitly.
  EXPECT_NE(
      raw_request("POST /x HTTP/1.1\r\nHost: h\r\n\r\n").find("405"),
      std::string::npos);
  EXPECT_NE(raw_request("not-http\r\n\r\n").find("400"), std::string::npos);
  std::string head =
      raw_request("HEAD / HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n");
  EXPECT_NE(head.find("200"), std::string::npos);
  EXPECT_EQ(head.find("\r\n\r\n"), head.size() - 4)
      << "HEAD response must carry no body";
}

TEST(HttpServerTest, HandlesManyConcurrentClients) {
  std::atomic<size_t> handled{0};
  HttpServer server(EphemeralPort(8), [&handled](const HttpRequest& request) {
    handled.fetch_add(1);
    HttpResponse response;
    response.body = "pong " + request.path;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 16;
  constexpr size_t kRequests = 8;
  std::atomic<size_t> errors{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &errors, c]() {
      for (size_t i = 0; i < kRequests; ++i) {
        std::string path = "/c" + std::to_string(c) + "/" + std::to_string(i);
        auto result = HttpGet(server.port(), path);
        if (!result.ok() || result->status != 200 ||
            result->body != "pong " + path) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(handled.load(), kClients * kRequests);
  server.Stop();
  EXPECT_EQ(server.requests_served(), kClients * kRequests);
}

TEST(HttpServerTest, StopUnderLiveTrafficShutsDownCleanly) {
  // Regression for the accept-loop shutdown race: Stop() used to shut
  // the pool down while the accept loop could still be handing off a
  // connection, and Submit() on a shut-down pool aborts the process.
  // Hammer the server from several clients and stop it mid-traffic;
  // passing means no abort (late requests may fail, that's fine).
  for (int round = 0; round < 3; ++round) {
    HttpServer server(EphemeralPort(2), [](const HttpRequest&) {
      HttpResponse response;
      response.body = "ok";
      return response;
    });
    ASSERT_TRUE(server.Start().ok());
    std::atomic<bool> done{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&server, &done]() {
        while (!done.load()) {
          auto result = HttpGet(server.port(), "/x");
          (void)result;  // failures after Stop() are expected
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.Stop();
    done.store(true);
    for (std::thread& t : clients) t.join();
  }
}

TEST(HttpParseTest, EtagMatches) {
  EXPECT_TRUE(EtagMatches("\"abc\"", "\"abc\""));
  EXPECT_TRUE(EtagMatches("  \"abc\" ", "\"abc\""));
  EXPECT_TRUE(EtagMatches("W/\"abc\"", "\"abc\""))
      << "If-None-Match uses weak comparison";
  EXPECT_TRUE(EtagMatches("\"x\", \"abc\", \"y\"", "\"abc\""));
  EXPECT_TRUE(EtagMatches("*", "\"abc\""));
  EXPECT_FALSE(EtagMatches("\"abc\"", "\"abd\""));
  EXPECT_FALSE(EtagMatches("", "\"abc\""));
  EXPECT_FALSE(EtagMatches("\"x\", \"y\"", "\"abc\""));
  EXPECT_FALSE(EtagMatches("\"abc\"", ""));
}

/// Raw-socket exchange: connect, send `wire`, read to EOF (bounded by
/// the client-side receive timeout). Returns everything received.
std::string RawExchange(uint16_t port, const std::string& wire,
                        int timeout_seconds = 10) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{};
  tv.tv_sec = timeout_seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::string out;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(HttpKeepAliveTest, SequentialRequestsShareOneConnection) {
  HttpServer server(EphemeralPort(), [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "echo " + request.path;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto result = client->Get("/r" + std::to_string(i));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->status, 200);
    EXPECT_EQ(result->body, "echo /r" + std::to_string(i));
    EXPECT_EQ(result->headers["connection"], "keep-alive");
    EXPECT_TRUE(client->connected());
  }
  server.Stop();
  EXPECT_EQ(server.requests_served(), 3u);
  EXPECT_EQ(server.connections_accepted(), 1u)
      << "three requests must not open three connections";
}

TEST(HttpKeepAliveTest, PipelinedSecondRequestInSamePacketIsServed) {
  // Both request heads arrive in one send() — the leftover bytes after
  // the first head must be consumed as the second request, not dropped.
  HttpServer server(EphemeralPort(), [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "got " + request.path;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  std::string wire =
      "GET /first HTTP/1.1\r\nHost: h\r\n\r\n"
      "GET /second HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
  std::string out = RawExchange(server.port(), wire);
  EXPECT_EQ(CountOccurrences(out, "HTTP/1.1 200"), 2u) << out;
  EXPECT_NE(out.find("got /first"), std::string::npos);
  EXPECT_NE(out.find("got /second"), std::string::npos);
  server.Stop();
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(server.connections_accepted(), 1u);
}

TEST(HttpKeepAliveTest, ConnectionCloseHonoredMidStream) {
  HttpServer server(EphemeralPort(), [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  auto first = client->Get("/one");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->headers["connection"], "keep-alive");
  ASSERT_TRUE(client->connected());

  auto second = client->Get("/two", {{"Connection", "close"}});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(second->headers["connection"], "close");
  EXPECT_FALSE(client->connected());
  EXPECT_FALSE(client->Get("/three").ok())
      << "the server must have closed the socket";
  server.Stop();
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(HttpKeepAliveTest, Http10ClosesByDefaultAndKeepsAliveOnRequest) {
  HttpServer server(EphemeralPort(), [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "v " + request.version;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  std::string plain =
      RawExchange(server.port(), "GET / HTTP/1.0\r\nHost: h\r\n\r\n");
  EXPECT_NE(plain.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(plain.find("Connection: close"), std::string::npos)
      << "HTTP/1.0 without an opt-in must close";

  // An explicit keep-alive opt-in holds the socket open: two pipelined
  // 1.0 requests get two responses, the second closing.
  std::string wire =
      "GET /a HTTP/1.0\r\nHost: h\r\nConnection: keep-alive\r\n\r\n"
      "GET /b HTTP/1.0\r\nHost: h\r\n\r\n";
  std::string out = RawExchange(server.port(), wire);
  EXPECT_EQ(CountOccurrences(out, "HTTP/1.1 200"), 2u) << out;
  EXPECT_NE(out.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(out.find("Connection: close"), std::string::npos);
}

TEST(HttpKeepAliveTest, OversizedRequestHeadGets431) {
  HttpServer::Options options = EphemeralPort();
  options.max_request_bytes = 1024;
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());
  std::string wire = "GET / HTTP/1.1\r\nHost: h\r\nX-Big: " +
                     std::string(4096, 'a') + "\r\n\r\n";
  std::string out = RawExchange(server.port(), wire);
  EXPECT_NE(out.find("431"), std::string::npos) << out;
}

TEST(HttpKeepAliveTest, IdleSocketIsClosedAfterIdleTimeout) {
  HttpServer::Options options = EphemeralPort();
  options.idle_timeout_ms = 150;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Get("/x").ok());
  EXPECT_TRUE(client->connected());

  // Sit idle past the timeout: the server must close the socket (the
  // next read sees EOF -> the Get fails) well before the 10s default.
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_FALSE(client->Get("/y").ok());
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(waited.count(), 5000);
  server.Stop();
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpKeepAliveTest, MaxRequestsPerConnectionCapCloses) {
  HttpServer::Options options = EphemeralPort();
  options.max_requests_per_connection = 2;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto first = client->Get("/1");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->headers["connection"], "keep-alive");
  auto second = client->Get("/2");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->headers["connection"], "close")
      << "the capped response must announce the close";
  EXPECT_FALSE(client->connected());
}

TEST(HttpKeepAliveTest, ConnectionLimitRefusesWith503) {
  HttpServer::Options options = EphemeralPort();
  options.max_connections = 1;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto holder = HttpClient::Connect(server.port());
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(holder->Get("/x").ok());  // connection admitted and live
  EXPECT_EQ(server.active_connections(), 1u);

  auto refused = HttpGet(server.port(), "/y");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, 503);

  // Releasing the held connection frees the slot.
  holder->Close();
  for (int i = 0; i < 500 && server.active_connections() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto admitted = HttpGet(server.port(), "/z");
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->status, 200);
}

TEST(HttpKeepAliveTest, KeepAliveDisabledClosesEveryConnection) {
  HttpServer::Options options = EphemeralPort();
  options.keep_alive = false;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto result = client->Get("/x");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->headers["connection"], "close");
  EXPECT_FALSE(client->connected());
}

TEST(HttpKeepAliveTest, StopClosesIdleKeepAliveSocketsPromptly) {
  // Graceful drain: Stop() must not wait out the (long) idle timeout
  // of parked keep-alive sockets.
  HttpServer::Options options = EphemeralPort();
  options.idle_timeout_ms = 60000;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto client = HttpClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Get("/x").ok());

  auto start = std::chrono::steady_clock::now();
  server.Stop();
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(waited.count(), 5000)
      << "Stop() must close idle sockets, not wait for their timeout";
  EXPECT_FALSE(client->Get("/y").ok());
}

int ConnectRaw(uint16_t port, int rcvbuf_bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf_bytes > 0) {
    // Must be set before connect so the window scales from the small
    // buffer — this is what makes the server's sends hit EAGAIN.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

TEST(HttpEpollTest, SlowClientDoesNotStallFastClient) {
  // The isolation the event loop buys: with a SINGLE render worker, a
  // client dribbling a 1 MiB tile one byte per 100ms must not delay a
  // concurrent fast client — the slow transfer parks in the
  // connection's output buffer, not on the worker.
  auto tile = std::make_shared<const std::string>(std::string(1 << 20, 'T'));
  HttpServer server(EphemeralPort(/*threads=*/1),
                    [tile](const HttpRequest&) {
                      HttpResponse response;
                      response.content_type = "application/octet-stream";
                      response.shared_body = tile;
                      return response;
                    });
  ASSERT_TRUE(server.Start().ok());

  int slow = ConnectRaw(server.port(), 4096);
  std::string wire = "GET /tile HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(slow, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::atomic<bool> stop_reading{false};
  std::thread dribble([&] {
    char byte;
    while (!stop_reading.load()) {
      if (::recv(slow, &byte, 1, 0) <= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // Let the slow transfer get rendered and queued first.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto start = std::chrono::steady_clock::now();
  auto fast = HttpGet(server.port(), "/tile");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(fast->body.size(), tile->size());
  // At the dribble rate the slow transfer takes >1 day; anything close
  // to wall-clock seconds here means the worker was pinned on it.
  EXPECT_LT(elapsed.count(), 3000)
      << "slow reader stalled a fast client's request";

  stop_reading.store(true);
  ::shutdown(slow, SHUT_RDWR);
  dribble.join();
  ::close(slow);
  server.Stop();
}

TEST(HttpEpollTest, LargeResponseToPausingReaderArrivesIntact) {
  // Forces many partial sends: a patterned 2 MiB body squeezed through
  // a small client receive window, read in bursts with pauses, must
  // arrive byte-identical — EPOLLOUT re-arm and output-segment offsets
  // cannot drop, duplicate, or reorder anything.
  std::string pattern(2 * 1024 * 1024, '\0');
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<char>('a' + (i % 23));
  }
  auto body = std::make_shared<const std::string>(std::move(pattern));
  HttpServer server(EphemeralPort(2), [body](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/octet-stream";
    response.shared_body = body;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  int fd = ConnectRaw(server.port(), 4096);
  std::string wire =
      "GET /big HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::string out;
  char buffer[32768];
  size_t since_pause = 0;
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    out.append(buffer, static_cast<size_t>(n));
    since_pause += static_cast<size_t>(n);
    if (since_pause >= 256 * 1024) {
      // Let the server's sends run dry and EPOLLOUT disarm/re-arm.
      since_pause = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ::close(fd);
  size_t head_end = out.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(out.substr(head_end + 4), *body);
  server.Stop();
}

TEST(HttpEpollTest, OutputCapDisconnectsReaderThatNeverDrains) {
  // A client that pipelines requests but never reads must be cut off
  // once its unsent responses exceed the output cap — and the server
  // must keep serving everyone else.
  HttpServer::Options options = EphemeralPort(2);
  options.max_output_buffer_bytes = 64 * 1024;
  options.io_timeout_seconds = 60;  // the cap must trigger, not the stall
  std::string chunk(16 * 1024, 'x');
  HttpServer server(options, [chunk](const HttpRequest&) {
    HttpResponse response;
    response.body = chunk;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  int fd = ConnectRaw(server.port(), 4096);
  std::string wire;
  // Enough pipelined responses to overflow even a fully auto-tuned
  // kernel send buffer (tcp_wmem max is typically 4 MiB) — only then
  // do sends hit EAGAIN and the server-side output buffer grow.
  const size_t kPipelined = 400;
  for (size_t i = 0; i < kPipelined; ++i) {
    wire += "GET /r" + std::to_string(i) + " HTTP/1.1\r\nHost: h\r\n\r\n";
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  // Don't read. Wait for the server to hit the cap and close; then
  // drain whatever was in flight — it must be far less than the
  // ~2 MiB total the pipeline asked for.
  timeval tv{};
  tv.tv_sec = 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  size_t drained = 0;
  char buffer[32768];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    drained += static_cast<size_t>(n);
  }
  EXPECT_LE(n, 0) << "server must close the capped connection";
  ::close(fd);
  EXPECT_LT(drained, kPipelined * chunk.size())
      << "cap never triggered: the whole pipeline was buffered";

  auto healthy = HttpGet(server.port(), "/after");
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->status, 200);
  server.Stop();
}

TEST(HttpEpollTest, ManyMostlyIdleConnectionsAreHeldWithoutRefusals) {
  // The fd-based limit: hundreds of parked keep-alive sockets on a
  // 2-worker server, zero refusals, and requests still served. Sized
  // to the process fd budget (client + server ends both count here).
  rlimit limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  size_t budget =
      limit.rlim_cur > 200 ? (static_cast<size_t>(limit.rlim_cur) - 200) / 2
                           : 16;
  const size_t held = std::min<size_t>(300, budget);
  HttpServer::Options options = EphemeralPort(2);
  options.idle_timeout_ms = 60000;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  std::vector<HttpClient> clients;
  clients.reserve(held);
  for (size_t i = 0; i < held; ++i) {
    auto client = HttpClient::Connect(server.port());
    ASSERT_TRUE(client.ok()) << "connection " << i << ": "
                             << client.status().ToString();
    auto result = client->Get("/warm");
    ASSERT_TRUE(result.ok()) << "connection " << i << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->status, 200) << "no 503s under the fd-based limit";
    clients.push_back(std::move(*client));
  }
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_refused, 0u);
  EXPECT_EQ(stats.connections_accepted, held);
  EXPECT_EQ(stats.active_connections, held);
  EXPECT_EQ(stats.requests_served, held);

  // The parked sockets are all still live, not just counted.
  auto again = clients.front().Get("/again");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->status, 200);
  server.Stop();
}

TEST(HttpEpollTest, RefusedConnectionsAreCounted) {
  HttpServer::Options options = EphemeralPort();
  options.max_connections = 1;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto holder = HttpClient::Connect(server.port());
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(holder->Get("/x").ok());

  auto refused = HttpGet(server.port(), "/y");
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, 503);
  HttpServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_refused, 1u)
      << "refusals must show up in the server's own accounting";
  EXPECT_EQ(stats.connections_accepted, 1u)
      << "a refused socket is not an accepted connection";
  server.Stop();
}

TEST(HttpClientTest, RecvTimeoutReportedAsTimeoutNotPeerClose) {
  // A peer that promises 100 body bytes, delivers 7, then stalls: the
  // client must report its receive timeout as a timeout — previously
  // SO_RCVTIMEO expiry was misreported as "connection closed mid-body".
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  uint16_t port = ntohs(addr.sin_port);

  std::thread peer([listener] {
    int conn = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    char buffer[1024];
    ::recv(conn, buffer, sizeof(buffer), 0);  // the request
    std::string head =
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
        "Content-Length: 100\r\nConnection: keep-alive\r\n\r\npartial";
    ::send(conn, head.data(), head.size(), MSG_NOSIGNAL);
    // Stall: no more bytes. The blocked recv returns when the client
    // gives up and closes its end.
    ::recv(conn, buffer, sizeof(buffer), 0);
    ::close(conn);
  });

  auto client = HttpClient::Connect(port, "127.0.0.1",
                                    /*timeout_seconds=*/1);
  ASSERT_TRUE(client.ok());
  auto result = client->Get("/stalled");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("timed out"), std::string::npos)
      << "got: " << result.status().ToString();
  EXPECT_EQ(result.status().ToString().find("connection closed"),
            std::string::npos)
      << "a timeout is not a peer close: " << result.status().ToString();
  peer.join();
  ::close(listener);
}

TEST(HttpServerTest, StartTwiceFailsAndStopIsIdempotent) {
  HttpServer server(EphemeralPort(), [](const HttpRequest&) {
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);
  server.Stop();
  server.Stop();
}

TEST(HttpServerTest, BadBindAddressFailsToStart) {
  HttpServer::Options options;
  options.port = 0;
  options.bind_address = "not-an-address";
  HttpServer server(options, [](const HttpRequest&) {
    return HttpResponse{};
  });
  EXPECT_FALSE(server.Start().ok());
}

/// The full service surface over real sockets: one PlotService with a
/// finished two-rung ladder behind MakeServiceHandler.
class ServiceEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<PlotService>();
    auto dataset = std::make_shared<Dataset>(test::Skewed(4000));
    dataset->CacheBounds();
    ASSERT_TRUE(service_
                    ->RegisterTable(
                        "geo", dataset,
                        []() {
                          return std::make_unique<UniformReservoirSampler>(3);
                        },
                        [] {
                          SampleCatalog::Options options;
                          options.ladder = {200, 800};
                          options.embed_density = false;
                          return options;
                        }())
                    .ok());
    ASSERT_TRUE(service_->manager().WaitUntilDone(CatalogKey{"geo"}).ok());
    // The stats lambda reads server_ lazily — it only runs per request,
    // after the server exists and has started.
    server_ = std::make_unique<HttpServer>(
        EphemeralPort(),
        MakeServiceHandler(service_.get(),
                           [this]() { return server_->stats(); }));
    ASSERT_TRUE(server_->Start().ok());
  }

  HttpFetchResult Get(const std::string& target) {
    auto result = HttpGet(server_->port(), target);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : HttpFetchResult{};
  }

  std::unique_ptr<PlotService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServiceEndpointTest, Healthz) {
  auto result = Get("/healthz");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "ok\n");
}

TEST_F(ServiceEndpointTest, StatsEndpointReportsTransportCounters) {
  ASSERT_EQ(Get("/healthz").status, 200);
  auto result = Get("/stats");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.headers["content-type"], "application/json");
  EXPECT_NE(result.body.find("\"requests_served\":"), std::string::npos)
      << result.body;
  EXPECT_NE(result.body.find("\"connections_accepted\":"), std::string::npos);
  EXPECT_NE(result.body.find("\"connections_refused\":0"), std::string::npos);
  EXPECT_NE(result.body.find("\"active_connections\":"), std::string::npos);
}

TEST_F(ServiceEndpointTest, CatalogsListsTheTable) {
  auto result = Get("/catalogs");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.headers["content-type"], "application/json");
  EXPECT_NE(result.body.find("\"table\":\"geo\""), std::string::npos);
  EXPECT_NE(result.body.find("\"rungs_ready\":2"), std::string::npos);
  EXPECT_NE(result.body.find("\"done\":true"), std::string::npos);
  EXPECT_NE(result.body.find("\"world\":["), std::string::npos);
}

TEST_F(ServiceEndpointTest, StatusReportsBuildMemoryAndCache) {
  auto result = Get("/status/geo");
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"build\":"), std::string::npos);
  EXPECT_NE(result.body.find("\"memory\":"), std::string::npos);
  EXPECT_NE(result.body.find("\"tile_cache\":"), std::string::npos);
  EXPECT_EQ(Get("/status/nope").status, 404);
}

TEST_F(ServiceEndpointTest, TileEndpointServesPngWithCacheHeaders) {
  auto cold = Get("/tiles/geo/1/0/1.png");
  EXPECT_EQ(cold.status, 200);
  EXPECT_EQ(cold.headers["content-type"], "image/png");
  ASSERT_GE(cold.body.size(), 8u);
  EXPECT_EQ(cold.body.substr(0, 8), std::string("\x89PNG\r\n\x1a\n", 8));
  EXPECT_EQ(cold.headers["x-vas-cache"], "miss");
  EXPECT_EQ(cold.headers["x-vas-rung"], "800");
  EXPECT_EQ(cold.headers["x-vas-rungs-ready"], "2/2");

  auto warm = Get("/tiles/geo/1/0/1.png");
  EXPECT_EQ(warm.headers["x-vas-cache"], "hit");
  EXPECT_EQ(warm.body, cold.body) << "hit and miss must be byte-identical";
}

TEST_F(ServiceEndpointTest, TileConditionalRequestsGet304) {
  auto cold = Get("/tiles/geo/1/0/1.png");
  ASSERT_EQ(cold.status, 200);
  std::string etag = cold.headers["etag"];
  ASSERT_FALSE(etag.empty());
  EXPECT_EQ(etag.front(), '"');
  EXPECT_EQ(etag.back(), '"') << "strong ETags are quoted";
  // The fixture's ladder is finished, so tiles are long-lived.
  EXPECT_EQ(cold.headers["cache-control"], "public, max-age=3600");

  auto client = HttpClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());
  auto not_modified =
      client->Get("/tiles/geo/1/0/1.png", {{"If-None-Match", etag}});
  ASSERT_TRUE(not_modified.ok());
  EXPECT_EQ(not_modified->status, 304);
  EXPECT_TRUE(not_modified->body.empty())
      << "304 must not carry the tile bytes";
  EXPECT_EQ(not_modified->headers["etag"], etag);
  EXPECT_EQ(not_modified->headers.count("content-length"), 0u);
  EXPECT_TRUE(client->connected())
      << "a 304 must not break the keep-alive framing";

  // The same socket still serves full responses afterwards.
  auto mismatch = client->Get("/tiles/geo/1/0/1.png",
                              {{"If-None-Match", "\"stale\""}});
  ASSERT_TRUE(mismatch.ok());
  EXPECT_EQ(mismatch->status, 200);
  EXPECT_EQ(mismatch->body, cold.body);
}

TEST_F(ServiceEndpointTest, HeatmapStyleServesDistinctCachedTiles) {
  auto scatter = Get("/tiles/geo/1/0/1.png");
  auto heatmap = Get("/tiles/geo/1/0/1.png?style=heatmap");
  EXPECT_EQ(heatmap.status, 200);
  EXPECT_EQ(heatmap.headers["content-type"], "image/png");
  EXPECT_EQ(heatmap.headers["x-vas-style"], "heatmap");
  EXPECT_EQ(scatter.headers["x-vas-style"], "scatter");
  EXPECT_NE(heatmap.headers["etag"], scatter.headers["etag"])
      << "the two styles are distinct resources";
  ASSERT_GE(heatmap.body.size(), 8u);
  EXPECT_EQ(heatmap.body.substr(0, 8), std::string("\x89PNG\r\n\x1a\n", 8));
  EXPECT_NE(heatmap.body, scatter.body);
  EXPECT_EQ(heatmap.headers["x-vas-cache"], "miss");

  auto warm = Get("/tiles/geo/1/0/1.png?style=heatmap");
  EXPECT_EQ(warm.headers["x-vas-cache"], "hit");
  EXPECT_EQ(warm.body, heatmap.body);

  // An explicit ?style=scatter is the same resource as the default.
  auto explicit_scatter = Get("/tiles/geo/1/0/1.png?style=scatter");
  EXPECT_EQ(explicit_scatter.headers["x-vas-cache"], "hit");
  EXPECT_EQ(explicit_scatter.body, scatter.body);
  EXPECT_EQ(explicit_scatter.headers["etag"], scatter.headers["etag"]);
}

TEST_F(ServiceEndpointTest, HeatmapConditionalRequestsArePerStyle) {
  auto heatmap = Get("/tiles/geo/1/0/1.png?style=heatmap");
  ASSERT_EQ(heatmap.status, 200);
  std::string etag = heatmap.headers["etag"];
  auto client = HttpClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());
  auto conditional = client->Get("/tiles/geo/1/0/1.png?style=heatmap",
                                 {{"If-None-Match", etag}});
  ASSERT_TRUE(conditional.ok());
  EXPECT_EQ(conditional->status, 304);
  // The heatmap tag must not validate the scatter resource.
  auto cross = client->Get("/tiles/geo/1/0/1.png",
                           {{"If-None-Match", etag}});
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->status, 200);
}

TEST_F(ServiceEndpointTest, UnknownTileStyleIs400) {
  auto result = Get("/tiles/geo/1/0/1.png?style=sepia");
  EXPECT_EQ(result.status, 400);
  EXPECT_NE(result.body.find("unknown tile style"), std::string::npos)
      << result.body;
}

TEST_F(ServiceEndpointTest, StatsReportsRenderAndEncodeCounters) {
  ASSERT_EQ(Get("/tiles/geo/0/0/0.png").status, 200);
  ASSERT_EQ(Get("/tiles/geo/0/0/0.png?style=heatmap").status, 200);
  auto result = Get("/stats");
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"render\":{"), std::string::npos)
      << result.body;
  EXPECT_NE(result.body.find("\"tiles_rendered\":2"), std::string::npos);
  EXPECT_NE(result.body.find("\"scatter_tiles_rendered\":1"),
            std::string::npos);
  EXPECT_NE(result.body.find("\"heatmap_tiles_rendered\":1"),
            std::string::npos);
  EXPECT_NE(result.body.find("\"encode_bytes_in\":"), std::string::npos);
  EXPECT_NE(result.body.find("\"encode_bytes_out\":"), std::string::npos);
}

TEST_F(ServiceEndpointTest, JsonEndpointsAreNoCache) {
  EXPECT_EQ(Get("/catalogs").headers["cache-control"], "no-cache");
  EXPECT_EQ(Get("/status/geo").headers["cache-control"], "no-cache");
  EXPECT_EQ(Get("/plot?table=geo").headers["cache-control"], "no-cache");
}

TEST_F(ServiceEndpointTest, TileErrorsMapToHttpCodes) {
  EXPECT_EQ(Get("/tiles/nope/0/0/0.png").status, 404);
  EXPECT_EQ(Get("/tiles/geo/1/9/0.png").status, 400) << "x outside 2^z grid";
  EXPECT_EQ(Get("/tiles/geo/1/-1/0.png").status, 400);
  EXPECT_EQ(Get("/tiles/geo/1/x/0.png").status, 400);
  EXPECT_EQ(Get("/tiles/geo/1/0/0.jpg").status, 404) << "only .png exists";
}

TEST_F(ServiceEndpointTest, PlotReturnsViewportCounts) {
  auto whole = Get("/plot?table=geo");
  EXPECT_EQ(whole.status, 200);
  EXPECT_NE(whole.body.find("\"points_in_viewport\":4000"),
            std::string::npos)
      << whole.body;
  EXPECT_NE(whole.body.find("\"sample_size\":800"), std::string::npos);

  EXPECT_EQ(Get("/plot").status, 400) << "missing ?table=";
  EXPECT_EQ(Get("/plot?table=geo&xmin=0").status, 400)
      << "partial viewport";
  EXPECT_EQ(Get("/plot?table=geo&xmin=a&ymin=0&xmax=1&ymax=1").status, 400);
  EXPECT_EQ(Get("/plot?table=geo&xmin=5&ymin=5&xmax=1&ymax=1").status, 400)
      << "inverted viewport must error, not silently mean whole-domain";
  EXPECT_EQ(Get("/plot?table=nope").status, 404);
}

TEST_F(ServiceEndpointTest, UnknownRouteIs404) {
  EXPECT_EQ(Get("/").status, 404);
  EXPECT_EQ(Get("/tiles/geo/1/0.png").status, 404) << "wrong segment count";
}

/// The fully observed deployment shape: one shared registry and trace
/// ring wired through the service, the transport, and the handler —
/// the same wiring serve_main does.
class ObservedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PlotService::Options service_options;
    service_options.registry = &registry_;
    service_ = std::make_unique<PlotService>(service_options);
    auto dataset = std::make_shared<Dataset>(test::Skewed(4000));
    dataset->CacheBounds();
    ASSERT_TRUE(service_
                    ->RegisterTable(
                        "geo", dataset,
                        []() {
                          return std::make_unique<UniformReservoirSampler>(3);
                        },
                        [] {
                          SampleCatalog::Options options;
                          options.ladder = {200, 800};
                          options.embed_density = false;
                          return options;
                        }())
                    .ok());
    ASSERT_TRUE(service_->manager().WaitUntilDone(CatalogKey{"geo"}).ok());
    HttpServer::Options server_options = EphemeralPort();
    server_options.registry = &registry_;
    server_options.trace_ring = &ring_;
    ServiceHandlerOptions handler_options;
    handler_options.stats_fn = [this]() { return server_->stats(); };
    handler_options.registry = &registry_;
    handler_options.trace_ring = &ring_;
    server_ = std::make_unique<HttpServer>(
        server_options,
        MakeServiceHandler(service_.get(), std::move(handler_options)));
    ASSERT_TRUE(server_->Start().ok());
  }

  HttpFetchResult Get(const std::string& target) {
    auto result = HttpGet(server_->port(), target);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : HttpFetchResult{};
  }

  /// /debug/requests for `request_id`, retried briefly: the trace only
  /// reaches the ring after the response bytes drain, which races the
  /// client seeing the body.
  std::string DebugEntryFor(const std::string& request_id) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto debug = Get("/debug/requests");
      EXPECT_EQ(debug.status, 200);
      size_t at = debug.body.find(request_id);
      if (at != std::string::npos) {
        // The entry runs from its opening brace to the next one (each
        // trace object is emitted on one line of the array).
        size_t begin = debug.body.rfind('{', at);
        size_t end = debug.body.find("{\"request_id\"", at);
        return debug.body.substr(
            begin, end == std::string::npos ? std::string::npos : end - begin);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return "";
  }

  /// duration_ns of the named span inside one /debug/requests entry,
  /// or -1 when the span is absent.
  static int64_t SpanDurationIn(const std::string& entry,
                                const std::string& span_name) {
    size_t at = entry.find("\"name\":\"" + span_name + "\"");
    if (at == std::string::npos) return -1;
    at = entry.find("\"duration_ns\":", at);
    if (at == std::string::npos) return -1;
    return std::strtoll(entry.c_str() + at + 14, nullptr, 10);
  }

  obs::MetricsRegistry registry_;
  obs::TraceRing ring_{8};
  std::unique_ptr<PlotService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ObservedServiceTest, MetricsEndpointSpeaksPrometheusText) {
  ASSERT_EQ(Get("/tiles/geo/1/0/1.png").status, 200);
  ASSERT_EQ(Get("/tiles/geo/1/0/1.png").status, 200) << "second hit caches";
  auto result = Get("/metrics");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.headers["content-type"],
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(result.headers["cache-control"], "no-cache");
  const std::string& body = result.body;
  // Transport, pool, render, and cache series all land in one scrape.
  EXPECT_NE(body.find("# TYPE vas_http_requests_total counter"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("vas_http_requests_total "), std::string::npos);
  EXPECT_NE(body.find("vas_pool_queue_wait_ns_count{pool=\"http\"}"),
            std::string::npos);
  EXPECT_NE(body.find("vas_tiles_rendered_total{style=\"scatter\"} 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("vas_tile_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(body.find("vas_tile_render_ns_count{style=\"scatter\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("vas_tile_render_ns_bucket{style=\"scatter\",le="),
            std::string::npos);
  EXPECT_NE(body.find("vas_catalog_resident_bytes"), std::string::npos)
      << "manager callback gauges must appear in the shared registry";
  // Zero-valued render counters must not leak the disabled state: the
  // histogram count equals the counter by construction.
  EXPECT_EQ(body.find("vas_tiles_rendered_total{style=\"scatter\"} 0"),
            std::string::npos);
}

TEST_F(ObservedServiceTest, SuppliedRequestIdIsEchoed) {
  auto client = HttpClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());
  auto result = client->Get("/tiles/geo/1/0/1.png",
                            {{"X-Vas-Request-Id", "caller-trace-77"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->headers["x-vas-request-id"], "caller-trace-77");
  EXPECT_NE(DebugEntryFor("caller-trace-77"), "")
      << "the caller's id names the ring entry";
}

TEST_F(ObservedServiceTest, MintedRequestIdReachesDebugRing) {
  auto result = Get("/tiles/geo/1/1/0.png");
  ASSERT_EQ(result.status, 200);
  std::string id = result.headers["x-vas-request-id"];
  ASSERT_EQ(id.substr(0, 4), "vas-") << "minted ids carry the vas- prefix";

  std::string entry = DebugEntryFor(id);
  ASSERT_NE(entry, "") << "traced request never reached /debug/requests";
  // The span chain covers transport and render stages with real time.
  // A resident ladder renders in place, so no materialize span here;
  // the span list is the transport chain plus the in-memory render.
  for (const char* span : {"parse", "queue_wait", "handle", "rung_choice",
                           "render", "encode", "send_drain"}) {
    EXPECT_NE(entry.find("\"name\":\"" + std::string(span) + "\""),
              std::string::npos)
        << span << " missing from " << entry;
  }
  // The acceptance bar: queue-wait, render, and encode all cost real,
  // attributed time on a cold tile.
  EXPECT_GT(SpanDurationIn(entry, "queue_wait"), 0) << entry;
  EXPECT_GT(SpanDurationIn(entry, "render"), 0) << entry;
  EXPECT_GT(SpanDurationIn(entry, "encode"), 0) << entry;
  EXPECT_NE(entry.find("\"status\":200"), std::string::npos) << entry;
}

TEST_F(ObservedServiceTest, StatsAndMetricsAgreeByConstruction) {
  ASSERT_EQ(Get("/tiles/geo/0/0/0.png").status, 200);
  ASSERT_EQ(Get("/tiles/geo/0/0/0.png?style=heatmap").status, 200);
  auto stats = Get("/stats");
  EXPECT_EQ(stats.status, 200);
  // The JSON fields are read back from the same registry objects the
  // exposition renders, so the two surfaces cannot drift.
  auto scatter = registry_.GetCounter(
      "vas_tiles_rendered_total", "Cold tile renders (cache hits excluded).",
      {{"style", "scatter"}});
  auto heatmap = registry_.GetCounter(
      "vas_tiles_rendered_total", "Cold tile renders (cache hits excluded).",
      {{"style", "heatmap"}});
  EXPECT_NE(stats.body.find("\"tiles_rendered\":" +
                            std::to_string(scatter->Value() +
                                           heatmap->Value())),
            std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"scatter_tiles_rendered\":" +
                            std::to_string(scatter->Value())),
            std::string::npos);
  // Back-compat: the pre-registry field names survive the rebuild.
  for (const char* field :
       {"\"requests_served\":", "\"connections_accepted\":",
        "\"connections_refused\":", "\"active_connections\":",
        "\"render\":{", "\"render_nanos\":", "\"encode_nanos\":"}) {
    EXPECT_NE(stats.body.find(field), std::string::npos)
        << field << " missing from " << stats.body;
  }
}

TEST_F(ObservedServiceTest, DebugRequestsIsBoundedAndNewestFirst) {
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(Get("/healthz").status, 200);
  }
  // All twelve traces eventually drain into the 8-slot ring.
  auto debug = Get("/debug/requests");
  EXPECT_EQ(debug.status, 200);
  EXPECT_EQ(debug.headers["cache-control"], "no-cache");
  size_t count = 0;
  for (size_t at = debug.body.find("\"request_id\"");
       at != std::string::npos;
       at = debug.body.find("\"request_id\"", at + 1)) {
    ++count;
  }
  EXPECT_LE(count, 8u) << "ring must stay bounded at its capacity";
  EXPECT_GE(count, 1u);
}

}  // namespace
}  // namespace vas
