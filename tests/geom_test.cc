// Unit tests for Point and Rect geometry primitives.
#include <gtest/gtest.h>

#include "geom/point.h"
#include "geom/rect.h"

namespace vas {
namespace {

TEST(PointTest, Arithmetic) {
  Point a{1.0, 2.0};
  Point b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(PointTest, Distances) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.width(), 0.0);
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
}

TEST(RectTest, ExtendByPoints) {
  Rect r;
  r.Extend(Point{1.0, 2.0});
  EXPECT_FALSE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  r.Extend(Point{3.0, -1.0});
  EXPECT_DOUBLE_EQ(r.min_x, 1.0);
  EXPECT_DOUBLE_EQ(r.max_x, 3.0);
  EXPECT_DOUBLE_EQ(r.min_y, -1.0);
  EXPECT_DOUBLE_EQ(r.max_y, 2.0);
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
}

TEST(RectTest, ExtendByRect) {
  Rect a = Rect::Of(0, 0, 1, 1);
  Rect b = Rect::Of(2, 2, 3, 3);
  a.Extend(b);
  EXPECT_EQ(a, Rect::Of(0, 0, 3, 3));
  Rect empty;
  a.Extend(empty);  // extending by empty is a no-op
  EXPECT_EQ(a, Rect::Of(0, 0, 3, 3));
}

TEST(RectTest, ContainsIsInclusive) {
  Rect r = Rect::Of(0, 0, 2, 2);
  EXPECT_TRUE(r.Contains({0.0, 0.0}));
  EXPECT_TRUE(r.Contains({2.0, 2.0}));
  EXPECT_TRUE(r.Contains({1.0, 1.0}));
  EXPECT_FALSE(r.Contains({2.1, 1.0}));
  EXPECT_FALSE(r.Contains({-0.1, 1.0}));
}

TEST(RectTest, Intersects) {
  Rect a = Rect::Of(0, 0, 2, 2);
  EXPECT_TRUE(a.Intersects(Rect::Of(1, 1, 3, 3)));
  EXPECT_TRUE(a.Intersects(Rect::Of(2, 2, 3, 3)));  // touching counts
  EXPECT_FALSE(a.Intersects(Rect::Of(2.01, 2.01, 3, 3)));
  EXPECT_FALSE(a.Intersects(Rect::Of(-2, -2, -1, -1)));
}

TEST(RectTest, CenterAndInflated) {
  Rect r = Rect::Of(0, 0, 2, 4);
  EXPECT_EQ(r.Center(), (Point{1.0, 2.0}));
  Rect big = r.Inflated(1.0);
  EXPECT_EQ(big, Rect::Of(-1, -1, 3, 5));
}

TEST(RectTest, SquaredDistanceToPoint) {
  Rect r = Rect::Of(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(r.SquaredDistanceTo({1.0, 1.0}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.SquaredDistanceTo({3.0, 1.0}), 1.0);   // right
  EXPECT_DOUBLE_EQ(r.SquaredDistanceTo({3.0, 3.0}), 2.0);   // corner
  EXPECT_DOUBLE_EQ(r.SquaredDistanceTo({-2.0, 1.0}), 4.0);  // left
}

TEST(RectTest, BoundingBox) {
  std::vector<Point> pts = {{1, 1}, {-1, 3}, {2, 0}};
  Rect r = Rect::BoundingBox(pts);
  EXPECT_EQ(r, Rect::Of(-1, 0, 2, 3));
  EXPECT_TRUE(Rect::BoundingBox({}).empty());
}

}  // namespace
}  // namespace vas
