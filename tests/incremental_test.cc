// Incremental (streaming) VAS maintenance: correctness of the slot
// state across batches and parity with one-shot Interchange.
#include <gtest/gtest.h>

#include <set>

#include "core/incremental.h"
#include "core/interchange.h"
#include "core/objective.h"
#include "data/generators.h"
#include "test_util.h"

namespace vas {
namespace {

IncrementalVas::Options StreamOptions(double epsilon) {
  IncrementalVas::Options opt;
  opt.epsilon = epsilon;
  return opt;
}

TEST(IncrementalVasTest, FillsThenHoldsCapacity) {
  IncrementalVas stream(10, StreamOptions(0.2));
  Dataset d = GenerateUniform(Rect::Of(0, 0, 10, 10), 100, 1);
  for (size_t i = 0; i < 5; ++i) stream.Observe(d.points[i]);
  EXPECT_EQ(stream.size(), 5u);
  stream.ObserveDataset(d);
  EXPECT_EQ(stream.size(), 10u);
  EXPECT_EQ(stream.capacity(), 10u);
  EXPECT_EQ(stream.tuples_seen(), 105u);
}

TEST(IncrementalVasTest, SampleElementsComeFromStream) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 10, 10), 500, 2);
  IncrementalVas stream(20, StreamOptions(0.2));
  stream.ObserveDataset(d);
  auto sample = stream.Sample();
  ASSERT_EQ(sample.size(), 20u);
  std::set<uint64_t> ids;
  for (const auto& e : sample) {
    ASSERT_LT(e.stream_id, 500u);
    EXPECT_EQ(e.point, d.points[e.stream_id]);
    ids.insert(e.stream_id);
  }
  EXPECT_EQ(ids.size(), 20u);  // unique stream positions
}

TEST(IncrementalVasTest, ObjectiveMatchesRecomputation) {
  Dataset d = GenerateUniform(Rect::Of(0, 0, 5, 5), 800, 3);
  double epsilon = 0.15;
  IncrementalVas stream(25, StreamOptions(epsilon));
  stream.ObserveDataset(d);
  GaussianKernel pair = GaussianKernel::PairKernelFor(epsilon);
  double recomputed =
      PairwiseObjective(stream.SampleDataset().points, pair);
  // Locality truncation only drops kernel values < 1.1e-7.
  EXPECT_NEAR(stream.objective(), recomputed,
              0.01 * std::max(1.0, recomputed));
}

TEST(IncrementalVasTest, ObjectiveNeverIncreasesAfterFill) {
  Dataset d = test::Skewed(100000);
  IncrementalVas stream(30, StreamOptions(0.14));
  // Fill first.
  for (size_t i = 0; i < 30; ++i) stream.Observe(d.points[i]);
  double prev = stream.objective();
  for (size_t i = 30; i < 5000; ++i) {
    stream.Observe(d.points[i]);
    if (i % 500 == 0) {
      double now = stream.objective();
      EXPECT_LE(now, prev + 1e-9);
      prev = now;
    }
  }
}

TEST(IncrementalVasTest, MatchesOneShotInterchangeQuality) {
  // Streaming the whole dataset once ≈ a one-pass Interchange run.
  Dataset d = test::Skewed(5000);
  double epsilon = GaussianKernel::DefaultEpsilon(d.Bounds());

  IncrementalVas stream(50, StreamOptions(epsilon));
  stream.ObserveDataset(d);

  InterchangeSampler::Options iopt;
  iopt.epsilon = epsilon;
  iopt.max_passes = 1;
  auto one_shot = InterchangeSampler(iopt).Run(d, 50);

  GaussianKernel pair = GaussianKernel::PairKernelFor(epsilon);
  double stream_obj = PairwiseObjective(stream.SampleDataset().points, pair);
  double batch_obj =
      PairwiseObjective(one_shot.sample.MaterializePoints(d), pair);
  // Same ballpark: within 2x of each other (different random starts).
  EXPECT_LT(stream_obj, std::max(2.0 * batch_obj, batch_obj + 0.5));
}

TEST(IncrementalVasTest, AdaptsToDistributionShift) {
  // Phase 1: all mass on the left. Phase 2: all new data on the right.
  // The maintained sample must migrate.
  IncrementalVas stream(40, StreamOptions(0.2));
  Dataset left = GenerateUniform(Rect::Of(0, 0, 4, 10), 5000, 5);
  stream.ObserveDataset(left);
  size_t right_before = 0;
  for (const auto& e : stream.Sample()) {
    if (e.point.x > 5.0) ++right_before;
  }
  EXPECT_EQ(right_before, 0u);

  Dataset right = GenerateUniform(Rect::Of(6, 0, 10, 10), 5000, 6);
  stream.ObserveDataset(right);
  size_t right_after = 0;
  for (const auto& e : stream.Sample()) {
    if (e.point.x > 5.0) ++right_after;
  }
  // VAS spreads over the union of supports: roughly half each side.
  EXPECT_GT(right_after, 10u);
  EXPECT_LT(right_after, 35u);
}

TEST(IncrementalVasTest, ValuesTravelWithPoints) {
  IncrementalVas stream(5, StreamOptions(0.5));
  stream.Observe({0, 0}, 1.5);
  stream.Observe({9, 9}, 2.5);
  Dataset s = stream.SampleDataset();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.values[0], 1.5);
  EXPECT_DOUBLE_EQ(s.values[1], 2.5);
}

}  // namespace
}  // namespace vas
