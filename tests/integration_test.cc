// Cross-module integration: the full paper pipeline — generate data,
// build samples with all methods, embed density, score loss, render,
// and check the paper's headline orderings end to end.
#include <gtest/gtest.h>

#include "core/vas.h"
#include "engine/sample_catalog.h"
#include "engine/session.h"
#include "eval/spearman.h"
#include "eval/tasks.h"
#include "render/scatter_renderer.h"
#include "test_util.h"

namespace vas {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(test::Skewed(40000));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* PipelineTest::dataset_ = nullptr;

TEST_F(PipelineTest, AllMethodsProduceLadderOfSamples) {
  const Dataset& d = *dataset_;
  UniformReservoirSampler uniform(1);
  StratifiedSampler stratified;
  InterchangeSampler vas_sampler;
  std::vector<Sampler*> samplers = {&uniform, &stratified, &vas_sampler};
  for (Sampler* s : samplers) {
    for (size_t k : {100u, 1000u}) {
      SampleSet sample = s->Sample(d, k);
      ASSERT_EQ(sample.size(), k) << s->name();
      SampleSet dense = WithDensity(d, sample);
      uint64_t total = 0;
      for (uint64_t c : dense.density) total += c;
      EXPECT_EQ(total, d.size()) << s->name();
    }
  }
}

TEST_F(PipelineTest, VasLossOrderingHoldsAcrossSizes) {
  // Figure 8's ordering at every rung of the ladder.
  const Dataset& d = *dataset_;
  MonteCarloLossEstimator::Options lopt;
  lopt.num_probes = 400;
  MonteCarloLossEstimator est(d, lopt);
  UniformReservoirSampler uniform(3);
  InterchangeSampler vas_sampler;
  for (size_t k : {200u, 1000u}) {
    double vas_ratio =
        est.LogLossRatioOf(vas_sampler.Sample(d, k).MaterializePoints(d));
    double uni_ratio =
        est.LogLossRatioOf(uniform.Sample(d, k).MaterializePoints(d));
    EXPECT_LT(vas_ratio, uni_ratio) << "k=" << k;
  }
}

TEST_F(PipelineTest, VasNeedsFewerPointsForEqualQuality) {
  // The "up to 400x fewer points" direction: VAS at k matches or beats
  // uniform at 10k.
  const Dataset& d = *dataset_;
  MonteCarloLossEstimator::Options lopt;
  lopt.num_probes = 400;
  MonteCarloLossEstimator est(d, lopt);
  UniformReservoirSampler uniform(3);
  InterchangeSampler vas_sampler;
  double vas_small =
      est.LogLossRatioOf(vas_sampler.Sample(d, 300).MaterializePoints(d));
  double uni_large =
      est.LogLossRatioOf(uniform.Sample(d, 3000).MaterializePoints(d));
  EXPECT_LT(vas_small, uni_large);
}

TEST_F(PipelineTest, ZoomRetention) {
  // Figure 1's qualitative claim, made quantitative: in a zoomed-in
  // sparse region, VAS retains more occupied pixels than uniform.
  const Dataset& d = *dataset_;
  const size_t k = 1000;
  UniformReservoirSampler uniform(3);
  InterchangeSampler vas_sampler;
  SampleSet u = uniform.Sample(d, k);
  SampleSet v = vas_sampler.Sample(d, k);

  ScatterRenderer renderer;
  Viewport overview(d.Bounds(), 256, 256);
  // Zoom into a low-density corner region (the paper zooms into
  // outskirts where uniform sampling starves).
  Rect b = d.Bounds();
  Rect corner = Rect::Of(b.min_x, b.min_y, b.min_x + b.width() / 4,
                         b.min_y + b.height() / 4);
  size_t vas_pts = 0, uni_pts = 0;
  for (size_t id : v.ids) {
    if (corner.Contains(d.points[id])) ++vas_pts;
  }
  for (size_t id : u.ids) {
    if (corner.Contains(d.points[id])) ++uni_pts;
  }
  EXPECT_GE(vas_pts, uni_pts);
  // Both must still draw a sane overview.
  Image ov = renderer.RenderSample(d, v, overview);
  EXPECT_GT(ov.InkFraction(renderer.options().background), 0.001);
}

TEST_F(PipelineTest, EndToEndSessionWithVasCatalog) {
  const Dataset& d = *dataset_;
  InterchangeSampler vas_sampler;
  SampleCatalog::Options copt;
  copt.ladder = {100, 1000, 10000};
  auto catalog = std::make_unique<SampleCatalog>(d, vas_sampler, copt);
  InteractiveSession session(d, std::move(catalog),
                             VizTimeModel::Tableau());
  InteractiveSession::PlotRequest req;
  req.time_budget_seconds = 0.5;  // strict interactivity
  auto plot = session.RequestPlot(req);
  EXPECT_LE(plot.estimated_viz_seconds, 0.5 + 1e-9);
  EXPECT_GT(plot.tuples.size(), 0u);
  // Render the served tuples with density-driven dot sizes.
  SampleSet served;
  served.ids.resize(plot.tuples.size());
  for (size_t i = 0; i < served.ids.size(); ++i) served.ids[i] = i;
  served.density = plot.density;
  ScatterRenderer renderer;
  Image img = renderer.RenderSample(plot.tuples, served,
                                    Viewport(d.Bounds(), 128, 128));
  EXPECT_GT(img.InkFraction(renderer.options().background), 0.0);
}

TEST_F(PipelineTest, LossCorrelatesWithRegressionSuccess) {
  // Figure 7 in miniature: across methods and sizes, lower loss should
  // track higher simulated-user success (negative Spearman).
  const Dataset& d = *dataset_;
  MonteCarloLossEstimator::Options lopt;
  lopt.num_probes = 300;
  MonteCarloLossEstimator est(d, lopt);
  RegressionStudy::Options ropt;
  ropt.num_questions = 12;
  ropt.num_users = 10;
  RegressionStudy study(d, ropt);

  UniformReservoirSampler uniform(3);
  StratifiedSampler stratified;
  InterchangeSampler vas_sampler;
  std::vector<Sampler*> samplers = {&uniform, &stratified, &vas_sampler};

  std::vector<double> losses, successes;
  for (Sampler* s : samplers) {
    for (size_t k : {100u, 1000u, 5000u}) {
      SampleSet sample = s->Sample(d, k);
      losses.push_back(est.LogLossRatioOf(sample.MaterializePoints(d)));
      successes.push_back(study.Evaluate(d, sample));
    }
  }
  EXPECT_LT(SpearmanCorrelation(losses, successes), -0.4);
}

}  // namespace
}  // namespace vas
